"""MonitorGroup: lease failover, epoch fencing, quorum gating, the journal."""

import pytest

from repro.cluster import MetadataServer, MonitorGroup, PlacementJournal
from repro.cluster.messages import Directive, Heartbeat
from repro.core import D2TreeScheme
from repro.simulation import SimNetwork, mon_addr
from tests.conftest import build_random_tree


def make_group(replicas=3, network=None, lease_timeout=1.0, servers=4):
    tree = build_random_tree(200, seed=9)
    scheme = D2TreeScheme()
    placement = scheme.partition(tree, servers)
    return MonitorGroup(
        scheme, tree, placement,
        replicas=replicas,
        heartbeat_timeout=1.0,
        lease_timeout=lease_timeout,
        expected_servers=range(servers),
        network=network,
    )


# ----------------------------------------------------------------------
# Singleton degradation
# ----------------------------------------------------------------------
def test_single_replica_degrades_to_singleton_monitor():
    group = make_group(replicas=1)
    assert group.epoch == 1 and group.leader == 0
    assert group.can_commit()
    group.on_heartbeat(Heartbeat(0, 0.5, 1.0, 1.0))
    assert group.last_seen(0) == 0.5
    assert not group.tick(10.0)  # healthy leader: lease renews implicitly
    assert group.epoch == 1 and group.failovers == 0


def test_group_needs_at_least_one_replica():
    with pytest.raises(ValueError):
        make_group(replicas=0)


# ----------------------------------------------------------------------
# Lease failover
# ----------------------------------------------------------------------
def test_leader_crash_triggers_lease_takeover():
    group = make_group(replicas=3, lease_timeout=1.0)
    group.crash_monitor(0, now=0.0)
    assert not group.can_commit()
    # First quorumless tick only starts the lease clock.
    assert not group.tick(0.5)
    assert group.leader == 0 and group.epoch == 1
    # Lease not yet expired.
    assert not group.tick(1.0)
    # Expired: lowest-numbered live replica with a quorum takes over.
    assert group.tick(2.0)
    assert group.leader == 1
    assert group.epoch == 2 and group.failovers == 1
    assert group.can_commit()
    # The election itself is journalled at the new epoch.
    elects = [d for d in group.journal if d.kind == "elect"]
    assert len(elects) == 1 and elects[0].epoch == 2


def test_failover_restores_membership_from_journal():
    group = make_group(replicas=3, lease_timeout=1.0)
    group.on_heartbeat(Heartbeat(2, 0.1, 1.0, 1.0))
    group.mark_dead(2, now=0.2)
    assert group.is_dead(2)
    group.crash_monitor(0, now=0.3)
    group.tick(0.4)
    assert group.tick(1.5)
    # The new leader inherits the journalled eviction, not private clocks.
    assert group.is_dead(2)
    assert group.last_seen(2) is None
    # Fresh grace period: nothing is instantly re-evicted.
    assert group.detect_failures(1.6) == []


def test_recovered_replica_rejoins_as_standby():
    group = make_group(replicas=3, lease_timeout=1.0)
    group.crash_monitor(0, now=0.0)
    group.tick(0.1)
    group.tick(1.2)
    assert group.leader == 1 and group.epoch == 2
    group.recover_monitor(0, now=2.0)
    # Leadership is sticky: the old leader does not reclaim it.
    assert not group.tick(3.0)
    assert group.leader == 1 and group.epoch == 2


# ----------------------------------------------------------------------
# Quorum gating over a partitioned network
# ----------------------------------------------------------------------
def test_minority_side_leader_cannot_commit():
    net = SimNetwork()
    group = make_group(replicas=3, network=net, lease_timeout=1.0)
    # Leader m0 isolated from m1+m2: one vote of three is no quorum.
    net.partition("p", [[mon_addr(0)], [mon_addr(1), mon_addr(2)]])
    assert not group.can_commit()
    assert group.issue("rehome", now=0.5, server=1) is None
    assert group.aborted_directives == 1
    assert group.rebalance(0.6) == []
    assert group.detect_failures(99.0) == []  # detection is leader-gated too
    # The majority side elects a new leader once the lease runs out.
    group.tick(0.5)
    assert group.tick(2.0)
    assert group.leader == 1 and group.epoch == 2
    # Healing reunites the cluster; the deposed replica stays a standby.
    net.heal("p")
    assert not group.tick(3.0)
    assert group.leader == 1


def test_total_partition_leaves_no_electable_replica():
    net = SimNetwork()
    group = make_group(replicas=3, network=net, lease_timeout=1.0)
    net.partition(
        "p", [[mon_addr(0)], [mon_addr(1)], [mon_addr(2)]]
    )
    group.tick(0.1)
    assert not group.tick(5.0)  # nobody reaches a majority
    assert group.epoch == 1 and group.failovers == 0


# ----------------------------------------------------------------------
# Directive commit + epoch fencing (the MDS side)
# ----------------------------------------------------------------------
def test_issued_directives_are_epoch_stamped_and_journalled():
    group = make_group(replicas=3)
    directive = group.issue("rehome", now=1.0, server=2, moves=3)
    assert directive is not None
    assert directive.epoch == 1 and directive.kind == "rehome"
    assert dict(directive.info) == {"moves": 3}
    assert group.journal.entries[-1] is directive


def test_stale_epoch_directive_is_fenced_by_mds():
    server = MetadataServer(0)
    assert server.accept_directive(1)
    assert server.accept_directive(2)
    assert server.fence_epoch == 2
    # A deposed leader's directive (older epoch) is refused ...
    assert not server.accept_directive(1)
    assert server.fenced_directives == 1
    # ... and the fence survives a crash/recover cycle — otherwise a stale
    # leader could resurrect pre-crash ownership through a rejoining MDS.
    server.fail()
    server.recover()
    assert server.fence_epoch == 2
    assert not server.accept_directive(1)
    assert server.fenced_directives == 2


# ----------------------------------------------------------------------
# PlacementJournal
# ----------------------------------------------------------------------
def test_journal_membership_replay_and_monotone_epochs():
    journal = PlacementJournal()
    journal.append(Directive(epoch=1, kind="mark_dead", server=2, t=0.1))
    journal.append(Directive(epoch=1, kind="mark_dead", server=3, t=0.2))
    journal.append(Directive(epoch=2, kind="rejoin", server=3, t=0.5))
    assert journal.acknowledged_dead() == {2}
    assert journal.epochs_monotone()
    assert journal.server_epochs(3) == [1, 2]
    journal.append(Directive(epoch=1, kind="rebalance", t=0.9))
    assert not journal.epochs_monotone()


def test_journal_snapshot_cursor():
    journal = PlacementJournal()
    journal.append(Directive(epoch=1, kind="mark_dead", server=0))
    assert journal.snapshot() == 1
    journal.append(Directive(epoch=1, kind="rejoin", server=0))
    assert [d.kind for d in journal.since_snapshot()] == ["rejoin"]
    assert len(journal) == 2
