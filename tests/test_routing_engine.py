"""Routing-engine contracts: parity, owner-index invalidation, batching.

Locks down the properties ``repro.simulation.routing`` documents:

* batch size is a pure throughput knob — simulation results and telemetry
  bytes are identical across batch sizes, for both engines;
* for D2-Tree placements the fast engine makes the *same* routing decisions
  as the legacy planner (same visits, RNG draws and cache statistics);
* the owner index survives migration, promotion, crash and rejoin without
  serving stale owners;
* ``plan_batch`` is exactly a sequential sequence of ``plan`` calls.
"""

import io

import pytest

from repro import registry
from repro.cluster.messages import VisitKind
from repro.obs import Telemetry, write_jsonl
from repro.simulation import FaultPlan, SimulationConfig
from repro.simulation.routing import (
    FastRoutingEngine,
    LegacyRoutingEngine,
    make_engine,
)
from repro.simulation.runner import ClusterSimulator, simulate
from repro.traces import DatasetProfile, OpType, TraceGenerator


@pytest.fixture(scope="module")
def workload():
    return TraceGenerator(
        DatasetProfile.dtr(num_nodes=1200, scale=5e-5), num_clients=10
    ).generate()


def _run(workload, scheme_name, telemetry=None, **overrides):
    config = SimulationConfig(
        num_clients=20, adjust_every_ops=400, **overrides
    )
    return simulate(
        registry.create(scheme_name), workload, 6, config, telemetry=telemetry
    )


def _telemetry_bytes(workload, scheme_name, **overrides):
    telemetry = Telemetry()
    result = _run(workload, scheme_name, telemetry=telemetry, **overrides)
    buffer = io.StringIO()
    write_jsonl(telemetry, buffer, summary=result.to_dict())
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Batch size is a pure throughput knob
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme_name", ["d2-tree", "drop"])
@pytest.mark.parametrize("engine", ["fast", "legacy"])
def test_batched_matches_per_op(workload, scheme_name, engine):
    batched = _run(workload, scheme_name, routing_engine=engine)
    per_op = _run(workload, scheme_name, routing_engine=engine, batch_size=1)
    assert batched == per_op


@pytest.mark.parametrize("scheme_name", ["d2-tree", "static-subtree"])
def test_batched_telemetry_bytes_identical(workload, scheme_name):
    """The full telemetry stream — not just the summary — is unaffected."""
    assert _telemetry_bytes(workload, scheme_name) == _telemetry_bytes(
        workload, scheme_name, batch_size=1
    )
    assert _telemetry_bytes(workload, scheme_name) == _telemetry_bytes(
        workload, scheme_name, batch_size=7
    )


# ----------------------------------------------------------------------
# D2: fast engine == legacy engine, including under faults
# ----------------------------------------------------------------------
def test_d2_fast_matches_legacy(workload):
    assert _run(workload, "d2-tree") == _run(
        workload, "d2-tree", routing_engine="legacy"
    )


def test_d2_fast_matches_legacy_under_crash_and_rejoin(workload):
    """Crash re-homing and rejoin flush the owner index correctly."""
    ops = len(workload.trace)
    plan = FaultPlan.parse(
        [f"crash:1@ops={ops // 4}", f"recover:1@ops={ops // 2}"]
    )
    fast = _run(workload, "d2-tree", fault_plan=plan)
    legacy = _run(
        workload, "d2-tree", fault_plan=plan, routing_engine="legacy"
    )
    assert fast == legacy


# ----------------------------------------------------------------------
# Owner-index invalidation
# ----------------------------------------------------------------------
def _d2_sim(workload):
    return ClusterSimulator(
        registry.create("d2-tree"), workload, 6,
        SimulationConfig(num_clients=10, adjust_every_ops=0),
    )


def test_owner_index_follows_migration(workload):
    sim = _d2_sim(workload)
    assert isinstance(sim.engine, FastRoutingEngine)
    client = sim.clients[0]
    root = next(iter(sim.placement.subtree_owner))
    old_owner = sim.placement.subtree_owner[root]
    sim.plan_route(client, root, OpType.READ)  # warm the client cache
    new_owner = (old_owner + 1) % sim.placement.num_servers
    sim.placement.move_subtree(root, new_owner)
    plan = sim.plan_route(client, root, OpType.READ)
    # The stale client entry costs a redirect, but the index itself must
    # already point at the new owner.
    assert plan.visits[0].kind is VisitKind.REDIRECT
    assert plan.visits[0].server == old_owner
    assert plan.visits[-1].server == new_owner
    follow_up = sim.plan_route(client, root, OpType.READ)
    assert [v.server for v in follow_up.visits] == [new_owner]


def test_owner_index_follows_promotion(workload):
    sim = _d2_sim(workload)
    client = sim.clients[0]
    root = max(
        sim.placement.subtree_owner,
        key=lambda node: len(node.children),
    )
    sim.plan_route(client, root, OpType.READ)
    sim.placement.promote_subtree(root)
    plan = sim.plan_route(client, root, OpType.READ)
    # Now global: any replica serves it in one hop, no redirect.
    assert len(plan.visits) == 1
    assert plan.visits[0].kind is VisitKind.SERVE
    assert plan.visits[0].server in sim.placement.servers_of(root)


def test_invalidate_flushes_to_correct_state(workload):
    sim = _d2_sim(workload)
    client = sim.clients[0]
    root = next(iter(sim.placement.subtree_owner))
    sim.plan_route(client, root, OpType.READ)
    new_owner = (sim.placement.subtree_owner[root] + 2) % 6
    sim.placement.move_subtree(root, new_owner)
    sim.engine.invalidate()
    plan = sim.plan_route(client, root, OpType.READ)
    assert plan.visits[-1].server == new_owner


def test_index_survives_structure_mutation(workload):
    """A tree mutation re-interns the PathTable transparently."""
    sim = _d2_sim(workload)
    client = sim.clients[0]
    node = sim.tree.add_path("/fresh/subdir/file.txt")
    sim.scheme.place_created(sim.tree, sim.placement, node)
    plan = sim.plan_route(client, node, OpType.READ)
    assert plan.visits[-1].kind is VisitKind.SERVE
    assert plan.visits[-1].server == sim.placement.primary_of(node)


# ----------------------------------------------------------------------
# plan_batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme_name", ["d2-tree", "drop"])
def test_plan_batch_equals_sequential_plans(workload, scheme_name):
    tree = workload.tree
    tree.ensure_popularity()

    def build():
        placement = registry.create(scheme_name).partition(tree, 6)
        engine = make_engine("fast", tree, placement)
        sim_clients = ClusterSimulator(
            registry.create(scheme_name), workload, 6,
            SimulationConfig(num_clients=5, adjust_every_ops=0),
        ).clients
        ops = [
            (sim_clients[i % 5], node, record.op)
            for i, record in enumerate(workload.trace.records[:500])
            if (node := tree.lookup(record.path)) is not None
        ]
        return engine, ops

    engine_a, ops_a = build()
    engine_b, ops_b = build()
    sequential = [engine_a.plan(c, n, o) for c, n, o in ops_a]
    batched = []
    for base in range(0, len(ops_b), 64):
        batched.extend(engine_b.plan_batch(ops_b[base : base + 64]))
    assert [p.visits for p in sequential] == [p.visits for p in batched]
    assert [p.fanout for p in sequential] == [p.fanout for p in batched]
    assert engine_a.hits == engine_b.hits
    assert engine_a.misses == engine_b.misses


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_make_engine_rejects_unknown_name(workload):
    tree = workload.tree
    tree.ensure_popularity()
    placement = registry.create("drop").partition(tree, 4)
    assert isinstance(
        make_engine("legacy", tree, placement), LegacyRoutingEngine
    )
    with pytest.raises(ValueError):
        make_engine("warp", tree, placement)


def test_hit_rate_counts_owner_index_lookups(workload):
    sim = _d2_sim(workload)
    client = sim.clients[0]
    root = next(iter(sim.placement.subtree_owner))
    assert sim.engine.hit_rate == 0.0
    sim.plan_route(client, root, OpType.READ)
    assert sim.engine.misses == 1
    sim.plan_route(client, root, OpType.READ)
    assert sim.engine.hits == 1
    assert sim.engine.hit_rate == 0.5
