"""Fault-injection subsystem: plans, detection, retry accounting, recovery."""

import dataclasses

import pytest

from repro.baselines import (
    AngleCutScheme,
    DropScheme,
    DynamicSubtreeScheme,
    HashScheme,
    StaticSubtreeScheme,
)
from repro.cluster import Monitor, fail_server, rejoin_server
from repro.cluster.messages import Heartbeat
from repro.core import D2TreeScheme
from repro.placement import DEAD_CAPACITY
from repro.simulation import (
    ClusterSimulator,
    FaultEvent,
    FaultKind,
    FaultPlan,
    SimulationConfig,
    simulate,
)
from repro.traces import DatasetProfile, TraceGenerator
from tests.conftest import build_random_tree


@pytest.fixture(scope="module")
def workload():
    return TraceGenerator(
        DatasetProfile.lmbe(num_nodes=1500, scale=6e-5), num_clients=20
    ).generate()


@pytest.fixture(scope="module")
def long_workload():
    # Enough operations after a mid-trace rejoin to amortise the outage.
    return TraceGenerator(
        DatasetProfile.lmbe(num_nodes=3000, scale=2e-4), num_clients=20
    ).generate()


def config(**kw):
    kw.setdefault("num_clients", 20)
    kw.setdefault("adjust_every_ops", 500)
    return SimulationConfig(**kw)


def plan(*specs):
    return FaultPlan.parse(list(specs))


# ----------------------------------------------------------------------
# FaultEvent / FaultPlan units
# ----------------------------------------------------------------------
def test_fault_event_parse_ops():
    event = FaultEvent.parse("crash:2@ops=1000")
    assert event.kind is FaultKind.CRASH
    assert event.server == 2
    assert event.at_ops == 1000 and event.at_time is None


def test_fault_event_parse_time_and_factor():
    event = FaultEvent.parse("fail_slow:1@t=4.5:x8")
    assert event.kind is FaultKind.FAIL_SLOW
    assert event.at_time == pytest.approx(4.5)
    assert event.factor == pytest.approx(8.0)


@pytest.mark.parametrize("spec", [
    "crash:2",                    # no trigger
    "crash@ops=5",                # no server
    "melt:1@ops=5",               # unknown kind
    "crash:1@soon=5",             # bad trigger key
    "fail_slow:1@ops=5:q4",       # malformed factor suffix
])
def test_fault_event_parse_rejects(spec):
    with pytest.raises(ValueError):
        FaultEvent.parse(spec)


def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.CRASH, 1)  # no trigger at all
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.CRASH, 1, at_ops=5, at_time=1.0)  # both
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.CRASH, -1, at_ops=5)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.FAIL_SLOW, 1, at_ops=5, factor=0.5)


@pytest.mark.parametrize("spec", [
    "crash:2@ops=1000",
    "recover:2@t=4.5",
    "fail_slow:1@ops=500:x8",
    "drop_heartbeats:0@t=2",
    "partition:{0,1}|{2,3,m1}@t=2",
    "heal:{0,1}|{2,3,m1}@t=4",
    "heal:*@t=4",
    "monitor_crash:0@ops=800",
    "monitor_recover:0@ops=1500",
    "loss:1@ops=500:p0.3",
    "delay:2@t=1:d0.001",
])
def test_every_kind_round_trips_through_to_spec(spec):
    event = FaultEvent.parse(spec)
    assert event.to_spec() == spec
    assert FaultEvent.parse(event.to_spec()) == event


def test_partition_groups_are_canonicalised():
    event = FaultEvent.parse("partition:{m1, 3, 1}|{0,2,m0}@t=1.0")
    # Members sort MDS-first then monitors; the canonical name is what a
    # heal event must match.
    assert event.partition_name == "{1,3,m1}|{0,2,m0}"
    assert event.server == -1
    heal = FaultEvent.parse("heal:{1,3,m1}|{0,2,m0}@t=2.0")
    assert heal.partition_name == event.partition_name


@pytest.mark.parametrize("spec", [
    "partition:{0,1}@t=1",         # a single group is no partition
    "partition:{}|{1}@t=1",        # empty group
    "partition:{0,x}|{1}@t=1",     # bad member token
    "partition:0@t=1",             # not group syntax at all
    "loss:1@ops=5:p0",             # probability outside (0, 1]
    "loss:1@ops=5:p1.5",
    "delay:1@ops=5",               # delay needs a :dSECONDS suffix
])
def test_new_kind_parse_rejects(spec):
    with pytest.raises(ValueError):
        FaultEvent.parse(spec)


# ----------------------------------------------------------------------
# Plan validation at apply time
# ----------------------------------------------------------------------
def test_validate_rejects_out_of_range_targets():
    with pytest.raises(ValueError, match="crash:9@ops=5"):
        plan("crash:9@ops=5").validate(4)
    with pytest.raises(ValueError, match="replicas 0..2"):
        plan("monitor_crash:3@ops=5").validate(4, num_monitors=3)
    with pytest.raises(ValueError, match="partitions server 7"):
        plan("partition:{0,7}|{1}@t=1").validate(4)
    with pytest.raises(ValueError, match="Monitor replica 5"):
        plan("partition:{0,m5}|{1}@t=1").validate(4, num_monitors=3)


def test_validate_warns_on_orphan_recover():
    with pytest.warns(UserWarning, match="ever degrades it"):
        plan("recover:1@ops=500").validate(4)


def test_validate_passes_clean_plans_through():
    schedule = plan(
        "crash:1@ops=100", "recover:1@ops=500",
        "partition:{0,1}|{2,3,m0}@t=1", "heal:*@t=2",
        "loss:2@ops=50:p0.5", "recover:2@ops=400",
    )
    assert schedule.validate(4, num_monitors=2) is schedule


def test_fault_plan_ordering_and_servers():
    schedule = plan(
        "recover:2@ops=900", "crash:2@ops=100",
        "drop_heartbeats:0@t=2.0", "crash:1@t=0.5",
    )
    assert [e.at_ops for e in schedule.by_ops()] == [100, 900]
    assert [e.at_time for e in schedule.by_time()] == [0.5, 2.0]
    assert schedule.servers() == [0, 1, 2]
    assert len(schedule) == 4 and bool(schedule)
    assert not FaultPlan()


# ----------------------------------------------------------------------
# Monitor detection semantics
# ----------------------------------------------------------------------
def test_monitor_reports_each_failure_once():
    tree = build_random_tree(100, seed=5)
    scheme = D2TreeScheme()
    placement = scheme.partition(tree, 3)
    monitor = Monitor(scheme, tree, placement, heartbeat_timeout=1.0)
    for sid in range(3):
        monitor.on_heartbeat(Heartbeat(sid, 0.0, 0.0, 0.0))
    monitor.on_heartbeat(Heartbeat(0, 5.0, 0.0, 0.0))
    assert monitor.detect_failures(5.0) == [1, 2]
    monitor.mark_dead(1)
    monitor.mark_dead(2)
    # Acknowledged failures are not re-reported on later sweeps.
    assert monitor.detect_failures(6.0) == []
    assert monitor.is_dead(1) and monitor.is_dead(2)
    # A heartbeat from a rejoined server clears the mark ...
    monitor.on_heartbeat(Heartbeat(1, 6.5, 0.0, 0.0))
    assert not monitor.is_dead(1)
    # ... making it detectable again if it goes silent once more.
    monitor.on_heartbeat(Heartbeat(0, 8.5, 0.0, 0.0))
    assert monitor.detect_failures(9.0) == [1]


def test_monitor_detects_never_heartbeated_member():
    tree = build_random_tree(100, seed=5)
    scheme = D2TreeScheme()
    placement = scheme.partition(tree, 3)
    monitor = Monitor(
        scheme, tree, placement, heartbeat_timeout=1.0,
        expected_servers=range(3),
    )
    monitor.on_heartbeat(Heartbeat(0, 0.1, 0.0, 0.0))
    monitor.on_heartbeat(Heartbeat(1, 0.1, 0.0, 0.0))
    # Server 2 registered at t=0 but never spoke: silent within the grace
    # period, dead after it (0 and 1 heartbeated recently enough).
    assert monitor.detect_failures(0.5) == []
    assert monitor.detect_failures(1.05) == [2]


# ----------------------------------------------------------------------
# Sentinel unification
# ----------------------------------------------------------------------
def test_dead_capacity_sentinel_is_shared():
    from repro.cluster.failure import surviving_capacities

    tree = build_random_tree(300, seed=11)
    placement = D2TreeScheme().partition(tree, 4)
    assert surviving_capacities(placement, dead=1)[1] == DEAD_CAPACITY
    fail_server(placement, dead=1)
    assert placement.capacities[1] == DEAD_CAPACITY
    assert DEAD_CAPACITY > 0  # ratio math (L_k / C_k) must stay defined


# ----------------------------------------------------------------------
# rejoin_server
# ----------------------------------------------------------------------
def test_rejoin_restores_d2_server():
    tree = build_random_tree(400, seed=13)
    placement = D2TreeScheme(global_layer_fraction=0.05).partition(tree, 4)
    fail_server(placement, dead=2)
    assert placement.local_loads()[2] == 0.0
    moves = rejoin_server(placement, 2)
    assert placement.capacities[2] == 1.0
    # Global layer re-replicated onto the rejoined server.
    for node in placement.split.global_layer:
        assert 2 in placement.servers_of(node)
    # Local-layer subtrees pulled back mirror-division style.
    assert placement.local_loads()[2] > 0.0
    assert moves and all(m.target == 2 for m in moves)


def test_rejoin_rehashes_static_hash_placement():
    tree = build_random_tree(400, seed=13)
    placement = HashScheme().partition(tree, 4)
    fail_server(placement, dead=3)
    owned = [n for n in tree if placement.servers_of(n) == (3,)]
    assert not owned
    moves = rejoin_server(placement, 3)
    assert placement.capacities[3] == 1.0
    regained = [n for n in tree if placement.servers_of(n) == (3,)]
    assert regained and len(moves) == len(regained)


def test_rejoin_rejects_bad_args():
    tree = build_random_tree(100, seed=5)
    placement = HashScheme().partition(tree, 3)
    with pytest.raises(ValueError):
        rejoin_server(placement, 9)
    with pytest.raises(ValueError):
        rejoin_server(placement, 1, capacity=0.0)


# ----------------------------------------------------------------------
# End-to-end: detection window, retries, failed ops
# ----------------------------------------------------------------------
def test_crash_detection_metrics(workload):
    cfg = config(fault_plan=plan("crash:2@ops=1000"))
    result = simulate(D2TreeScheme(), workload, 4, cfg)
    av = result.availability
    assert av is not None and av.impacted
    assert av.crashes == 1
    # The Monitor takes a strictly positive time to notice the crash; in
    # that window clients time out against the dead server and retry.
    assert av.detection_latency[2] > 0.0
    assert av.unavailability > 0.0
    assert av.retries > 0
    # The default retry budget rides out the detection window: no op fails.
    assert av.failed_operations == 0
    assert result.operations == len(workload.trace)
    assert f"retries={av.retries}" in result.row()


def test_tight_retry_budget_fails_operations(workload):
    cfg = config(fault_plan=plan("crash:2@ops=1000"), max_retries=2)
    result = simulate(D2TreeScheme(), workload, 4, cfg)
    assert result.failed_operations > 0
    # Every trace record is accounted for: completed or failed, never lost.
    assert result.operations + result.failed_operations == len(workload.trace)


def test_detection_disabled_counts_unavailability(workload):
    cfg = config(
        fault_plan=plan("crash:2@ops=1000"),
        heartbeat_interval=0.0,   # Monitor never sweeps
        max_retries=3,
    )
    result = simulate(D2TreeScheme(), workload, 4, cfg)
    av = result.availability
    # Never detected: no re-home, so the outage runs to the end of the
    # replay and ops keep failing against the dead server.
    assert av.detection_latency == {}
    assert av.unavailability > 0.0
    assert av.failed_operations > 0


def test_crash_and_rejoin_recovers_throughput(long_workload):
    baseline = simulate(D2TreeScheme(), long_workload, 4, config())
    cfg = config(fault_plan=plan("crash:2@ops=1000", "recover:2@ops=2000"))
    sim = ClusterSimulator(D2TreeScheme(), long_workload, 4, cfg)
    result = sim.run()
    av = result.availability
    assert av.crashes == 1 and av.rejoins == 1
    assert av.time_to_recover[2] > 0.0
    assert sim.servers[2].alive
    assert sim.placement.capacities[2] == 1.0
    # The rejoined server is pulled back into service ...
    assert sim.placement.local_loads()[2] > 0.0
    # ... and the replay ends within 15% of fault-free throughput.
    assert result.throughput >= 0.85 * baseline.throughput


def test_double_failure_through_plan(workload):
    cfg = config(fault_plan=plan("crash:0@ops=600", "crash:3@ops=1600"))
    sim = ClusterSimulator(D2TreeScheme(), workload, 5, cfg)
    result = sim.run()
    assert result.availability.crashes == 2
    assert result.operations + result.failed_operations == len(workload.trace)
    live = {s.server_id for s in sim.servers if s.alive}
    assert live == {1, 2, 4}
    for node in workload.tree:
        assert set(sim.placement.servers_of(node)) <= live


def test_crash_rejoin_recrash(workload):
    cfg = config(fault_plan=plan(
        "crash:1@ops=500", "recover:1@ops=1200", "crash:1@ops=1900",
    ))
    sim = ClusterSimulator(D2TreeScheme(), workload, 4, cfg)
    result = sim.run()
    av = result.availability
    assert av.crashes == 2 and av.rejoins == 1
    assert not sim.servers[1].alive
    # Both outages were detected (the dict keeps the latest one).
    assert av.detection_latency[1] > 0.0
    assert result.operations + result.failed_operations == len(workload.trace)
    for node in workload.tree:
        assert 1 not in sim.placement.servers_of(node)


def test_crash_during_adjustment_round(workload):
    # The crash fires on the exact completion that also triggers the
    # adjustment heartbeats: the round must run against the dead server
    # without reviving it or crashing the replay.
    cfg = config(adjust_every_ops=500, fault_plan=plan("crash:2@ops=500"))
    sim = ClusterSimulator(D2TreeScheme(), workload, 4, cfg)
    result = sim.run()
    assert result.operations + result.failed_operations == len(workload.trace)
    assert not sim.servers[2].alive
    for node in workload.tree:
        assert 2 not in sim.placement.servers_of(node)


@pytest.mark.parametrize("scheme_cls", [
    D2TreeScheme, StaticSubtreeScheme, DynamicSubtreeScheme,
    HashScheme, DropScheme, AngleCutScheme,
])
def test_all_schemes_survive_injected_crash(workload, scheme_cls):
    cfg = config(fault_plan=plan("crash:1@ops=800"))
    sim = ClusterSimulator(scheme_cls(), workload, 4, cfg)
    result = sim.run()
    assert result.operations + result.failed_operations == len(workload.trace)
    assert result.availability.crashes == 1
    for node in workload.tree:
        if sim.placement.is_placed(node):
            assert 1 not in sim.placement.servers_of(node)


# ----------------------------------------------------------------------
# Gray failures and false positives
# ----------------------------------------------------------------------
def test_fail_slow_degrades_throughput(workload):
    healthy = simulate(D2TreeScheme(), workload, 4, config())
    slowed = simulate(
        D2TreeScheme(), workload, 4,
        config(fault_plan=plan("fail_slow:0@ops=200:x20")),
    )
    assert slowed.throughput < healthy.throughput
    # A gray failure is not a crash: nothing fails, nothing retries.
    assert slowed.availability.crashes == 0
    assert slowed.failed_operations == 0


def test_drop_heartbeats_is_false_positive_eviction(workload):
    cfg = config(fault_plan=plan("drop_heartbeats:1@ops=500"))
    sim = ClusterSimulator(D2TreeScheme(), workload, 4, cfg)
    result = sim.run()
    av = result.availability
    # The server never died, but the Monitor evicted it anyway.
    assert sim.servers[1].alive
    assert av.false_detections == 1
    assert av.crashes == 0 and av.unavailability == 0.0
    for node in workload.tree:
        assert 1 not in sim.placement.servers_of(node)
    assert result.operations == len(workload.trace)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_identical_seed_and_plan_is_bit_identical(workload):
    cfg = config(fault_plan=plan("crash:2@ops=800", "recover:2@ops=1600"))
    first = simulate(D2TreeScheme(), workload, 4, cfg)
    second = simulate(D2TreeScheme(), workload, 4, cfg)
    assert first.makespan == second.makespan
    assert first.throughput == second.throughput
    assert first.latency == second.latency
    assert first.server_visits == second.server_visits
    assert dataclasses.asdict(first.availability) == dataclasses.asdict(
        second.availability
    )


def test_legacy_failures_tuple_still_works(workload):
    # The pre-fault-plan shorthand folds into the plan as crash events.
    cfg = config(failures=((1000, 2),))
    sim = ClusterSimulator(D2TreeScheme(), workload, 4, cfg)
    result = sim.run()
    assert result.availability.crashes == 1
    assert not sim.servers[2].alive
    assert result.operations == len(workload.trace)


# ----------------------------------------------------------------------
# kill9 family: grammar + validation rejection paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", [
    "kill9:1@ops=700",
    "torn_write:2@ops=900",
    "corrupt_record:0@t=3",
])
def test_kill9_family_round_trips(spec):
    event = FaultEvent.parse(spec)
    assert event.to_spec() == spec
    assert FaultEvent.parse(event.to_spec()) == event


@pytest.mark.parametrize("spec", [
    "kill9:1",                     # no trigger
    "kill9@ops=5",                 # no server
    "torn_write:-1@ops=5",         # negative target
    "corrupt_record:1@soon=5",     # bad trigger key
])
def test_kill9_family_parse_rejects(spec):
    with pytest.raises(ValueError):
        FaultEvent.parse(spec)


@pytest.mark.parametrize("spec", [
    "kill9:4@ops=10",
    "torn_write:9@ops=10",
    "corrupt_record:4@t=1",
])
def test_validate_rejects_kill9_family_out_of_range(spec):
    with pytest.raises(ValueError, match="server"):
        plan(spec).validate(4)


def test_validate_warns_on_recover_after_kill9_only_plans():
    # kill9 counts as a down event, so a recover after it is not an
    # orphan — no warning expected.
    import warnings as _warnings

    schedule = plan("kill9:1@ops=100", "recover:1@ops=500")
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        assert schedule.validate(4) is schedule
