"""Tests for simulation-stats percentiles, serialization and formatting."""

import json

import pytest

from repro.simulation.stats import (
    AvailabilityReport,
    LatencySummary,
    SimulationResult,
    _percentile,
    summarize_latencies,
)


# ----------------------------------------------------------------------
# Linear-interpolation percentiles (satellite fix)
# ----------------------------------------------------------------------
def test_percentile_interpolates_between_ranks():
    values = [1.0, 2.0, 3.0, 4.0]
    # numpy's default linear method: position = q * (n - 1).
    assert _percentile(values, 0.50) == pytest.approx(2.5)
    assert _percentile(values, 0.95) == pytest.approx(3.85)
    assert _percentile(values, 0.99) == pytest.approx(3.97)


def test_percentile_endpoints_and_singleton():
    values = [10.0, 20.0, 30.0]
    assert _percentile(values, 0.0) == 10.0
    assert _percentile(values, 1.0) == 30.0
    assert _percentile([7.0], 0.95) == 7.0
    assert _percentile([], 0.5) == 0.0


def test_small_sample_tail_percentiles_stay_distinct():
    # With nearest-rank rounding every tail percentile collapsed onto the
    # max for samples under ~100 values; interpolation keeps them apart.
    summary = summarize_latencies([float(i) for i in range(1, 21)])
    assert summary.p50 < summary.p95 < summary.p99 < summary.maximum
    assert summary.p50 == pytest.approx(10.5)
    assert summary.p99 == pytest.approx(19.81)


def test_percentiles_monotone_in_q():
    values = [0.3, 0.1, 4.0, 2.0, 0.9, 1.1, 0.2]
    ordered = sorted(values)
    results = [_percentile(ordered, q / 100) for q in range(0, 101, 5)]
    assert results == sorted(results)
    assert results[0] == ordered[0] and results[-1] == ordered[-1]


# ----------------------------------------------------------------------
# to_dict serialization (the --json / telemetry-summary form)
# ----------------------------------------------------------------------
def test_latency_summary_to_dict_round_trips_json():
    summary = summarize_latencies([1.0, 2.0, 3.0])
    data = json.loads(json.dumps(summary.to_dict()))
    assert data["count"] == 3
    assert data["mean"] == pytest.approx(2.0)
    assert set(data) == {"count", "mean", "p50", "p95", "p99", "max"}


def test_availability_to_dict_stringifies_server_keys():
    report = AvailabilityReport(
        crashes=2, retries=5,
        detection_latency={3: 0.2, 1: 0.1},
        time_to_recover={3: 0.9},
    )
    data = report.to_dict()
    assert data["detection_latency"] == {"1": 0.1, "3": 0.2}
    assert data["time_to_recover"] == {"3": 0.9}
    assert list(data["detection_latency"]) == ["1", "3"]  # sorted
    json.dumps(data)  # JSON-safe


def _result(**overrides):
    kwargs = dict(
        scheme="d2-tree", trace="DTR", num_servers=4, operations=100,
        makespan=2.0, throughput=50.0,
        latency=LatencySummary(100, 0.01, 0.01, 0.02, 0.03, 0.05),
        jumps_total=40,
    )
    kwargs.update(overrides)
    return SimulationResult(**kwargs)


def test_simulation_result_to_dict_includes_derived_fields():
    data = _result().to_dict()
    assert data["mean_jumps"] == pytest.approx(0.4)
    assert data["latency"]["p95"] == 0.02
    assert data["availability"] is None
    json.dumps(data)


# ----------------------------------------------------------------------
# Human-readable formatting
# ----------------------------------------------------------------------
def test_availability_describe_formats_milliseconds():
    report = AvailabilityReport(
        crashes=1, rejoins=1, retries=12, failed_operations=2,
        detection_latency={2: 0.1521}, time_to_recover={2: 0.5},
        unavailability=0.1521,
    )
    text = report.describe()
    assert "crashes=1 rejoins=1 false_detections=0" in text
    assert "failed operations : 2" in text
    assert "retries           : 12" in text
    assert "unavailability    : 152.10 ms" in text
    assert "detection latency : s2=152.10ms" in text
    assert "time to recover   : s2=500.00ms" in text


def test_availability_describe_skips_empty_sections():
    text = AvailabilityReport(retries=3).describe()
    assert "detection latency" not in text
    assert "time to recover" not in text


def test_simulation_result_row_fault_free():
    row = _result().row()
    assert row.startswith("d2-tree")
    assert "M=4" in row
    assert "thr=     50.0 ops/s" in row
    assert "p95=  20.00 ms" in row
    assert "jumps/op= 0.40" in row
    assert "retries=" not in row


def test_simulation_result_row_appends_fault_columns():
    availability = AvailabilityReport(retries=7, failed_operations=1, crashes=1)
    row = _result(availability=availability).row()
    assert "retries=7" in row
    assert "failed=1" in row


def test_impacted_flag():
    assert not AvailabilityReport().impacted
    assert AvailabilityReport(retries=1).impacted
    assert AvailabilityReport(crashes=1).impacted
