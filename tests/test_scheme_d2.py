"""Tests for the D2-Tree scheme facade and its placement."""

import pytest

from repro.core import D2TreePlacement, D2TreeScheme, NamespaceTree
from tests.conftest import build_random_tree


def test_partition_places_every_node(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    placement.validate_complete(random_tree)


def test_global_layer_replicated_everywhere(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    for node in placement.split.global_layer:
        assert placement.servers_of(node) == (0, 1, 2, 3)


def test_local_nodes_single_server(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    for node in random_tree:
        if not placement.is_global(node):
            assert len(placement.servers_of(node)) == 1


def test_subtree_integrity(random_tree):
    # Every local-layer subtree lives wholly on one server (Sec. IV-A1:
    # "each subtree is treated as an unit").
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    for root, server in placement.subtree_owner.items():
        for node in root.descendants(include_self=True):
            assert placement.primary_of(node) == server


def test_jump_convention(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    for node in random_tree:
        expected = 0 if placement.is_global(node) else 1
        assert placement.jumps_for(node) == expected


def test_subtree_root_of(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    for node in random_tree:
        root = placement.subtree_root_of(node)
        if placement.is_global(node):
            assert root is None
        else:
            assert root in placement.subtree_owner
            walk = node
            while walk is not root:
                walk = walk.parent
            assert walk is root


def test_single_server_cluster(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 1)
    placement.validate_complete(random_tree)
    assert all(placement.primary_of(n) == 0 for n in random_tree)


def test_explicit_thresholds_used():
    tree = build_random_tree(200)
    total = sum(n.popularity for n in tree)
    scheme = D2TreeScheme(locality_threshold=total, update_threshold=1e9)
    placement = scheme.partition(tree, 2)
    assert placement.split.global_layer == {tree.root}


def test_infeasible_thresholds_raise():
    tree = build_random_tree(200)
    scheme = D2TreeScheme(locality_threshold=0.0, update_threshold=0.0)
    with pytest.raises(ValueError):
        scheme.partition(tree, 2)


def test_threshold_args_must_pair():
    with pytest.raises(ValueError):
        D2TreeScheme(locality_threshold=1.0)


def test_fraction_bounds():
    with pytest.raises(ValueError):
        D2TreeScheme(global_layer_fraction=0.0)
    with pytest.raises(ValueError):
        D2TreeScheme(global_layer_fraction=1.5)


def test_invalid_server_count(random_tree):
    scheme = D2TreeScheme()
    with pytest.raises(ValueError):
        scheme.partition(random_tree, 0)


def test_local_loads_sum_to_subtree_popularity(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    assert sum(placement.local_loads()) == pytest.approx(
        sum(r.popularity for r in placement.subtree_owner)
    )


def test_rebalance_moves_subtrees_after_shift(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05, imbalance_tolerance=0.05)
    placement = scheme.partition(random_tree, 4)
    # Artificially concentrate everything on server 0.
    for root in list(placement.subtree_owner):
        placement.move_subtree(root, 0)
    migrations = scheme.rebalance(random_tree, placement)
    assert migrations
    loads = placement.local_loads()
    assert loads[0] < sum(loads)  # no longer everything on one server


def test_rebalance_on_balanced_cluster_is_quiet(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    for _ in range(5):
        if not scheme.rebalance(random_tree, placement):
            break
    assert scheme.rebalance(random_tree, placement) == []


def test_move_subtree_unknown_root_rejected(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    with pytest.raises(KeyError):
        placement.move_subtree(random_tree.root, 1)


def test_refresh_global_layer_preserves_completeness(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    # Shift popularity: pump a previously-cold subtree.
    cold = [n for n in random_tree if not n.is_directory][-5:]
    for node in cold:
        random_tree.record_access(node, 1000.0)
    random_tree.aggregate_popularity()
    fresh = scheme.refresh_global_layer(random_tree, placement)
    fresh.validate_complete(random_tree)
    assert isinstance(fresh, D2TreePlacement)


def test_refresh_keeps_surviving_subtrees_in_place(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(random_tree, 4)
    fresh = scheme.refresh_global_layer(random_tree, placement)
    # Same popularity -> same split; owners should carry over.
    for root, owner in fresh.subtree_owner.items():
        if root in placement.subtree_owner:
            assert owner == placement.subtree_owner[root]


def test_sampled_allocation_mode(random_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05, sampled_allocation=True,
                          samples_per_server=64)
    placement = scheme.partition(random_tree, 4)
    placement.validate_complete(random_tree)


def test_deterministic_given_seed(random_tree):
    a = D2TreeScheme(seed=9).partition(random_tree, 4)
    b = D2TreeScheme(seed=9).partition(random_tree, 4)
    assert {r.path: s for r, s in a.subtree_owner.items()} == {
        r.path: s for r, s in b.subtree_owner.items()
    }


def test_fully_global_tree():
    tree = NamespaceTree()
    tree.add_path("/only.txt")
    tree.record_access(tree.lookup("/only.txt"), 1.0)
    tree.aggregate_popularity()
    scheme = D2TreeScheme(global_layer_fraction=1.0)
    placement = scheme.partition(tree, 3)
    assert placement.subtree_owner == {}
    for node in tree:
        assert placement.is_replicated(node)
