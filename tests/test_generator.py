"""Tests for the synthetic trace generator."""

import random

import pytest

from repro.traces import DatasetProfile, OpType, TraceGenerator, ZipfSampler, load_workload
from repro.traces.generator import STRUCTURAL_UPDATE_COST


@pytest.fixture(scope="module")
def dtr_workload():
    return TraceGenerator(DatasetProfile.dtr(num_nodes=1500, scale=6e-5)).generate()


# ----------------------------------------------------------------------
# ZipfSampler
# ----------------------------------------------------------------------
def test_zipf_sampler_range():
    sampler = ZipfSampler(10, 1.0, random.Random(1))
    samples = [sampler.sample() for _ in range(500)]
    assert all(0 <= s < 10 for s in samples)


def test_zipf_sampler_skew():
    sampler = ZipfSampler(50, 1.2, random.Random(2))
    samples = [sampler.sample() for _ in range(3000)]
    low_ranks = sum(1 for s in samples if s < 5)
    high_ranks = sum(1 for s in samples if s >= 45)
    assert low_ranks > 5 * high_ranks


def test_zipf_sampler_uniform_when_exponent_zero():
    sampler = ZipfSampler(4, 0.0, random.Random(3))
    counts = [0] * 4
    for _ in range(4000):
        counts[sampler.sample()] += 1
    assert max(counts) < 2 * min(counts)


def test_zipf_sampler_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0, random.Random(1))
    with pytest.raises(ValueError):
        ZipfSampler(5, -1.0, random.Random(1))


# ----------------------------------------------------------------------
# Generated tree structure
# ----------------------------------------------------------------------
def test_tree_size_matches_profile(dtr_workload):
    assert len(dtr_workload.tree) == pytest.approx(1500, abs=5)


def test_exact_max_depth(dtr_workload):
    assert dtr_workload.tree.depth() == 49


def test_lmbe_shallow_depth():
    workload = TraceGenerator(DatasetProfile.lmbe(num_nodes=1200, scale=2e-5)).generate()
    assert workload.tree.depth() == 9


def test_hot_set_size(dtr_workload):
    expected = round(0.01 * 1500)
    assert len(dtr_workload.hot_nodes) == pytest.approx(expected, abs=2)


def test_tree_is_valid(dtr_workload):
    dtr_workload.tree.validate()


# ----------------------------------------------------------------------
# Generated trace properties
# ----------------------------------------------------------------------
def test_trace_length(dtr_workload):
    assert len(dtr_workload.trace) == dtr_workload.profile.num_operations


def test_operation_mix_close_to_table2(dtr_workload):
    breakdown = dtr_workload.trace.operation_breakdown()
    assert breakdown[OpType.READ] == pytest.approx(0.677, abs=0.03)
    assert breakdown[OpType.WRITE] == pytest.approx(0.261, abs=0.03)
    assert breakdown[OpType.UPDATE] == pytest.approx(0.061, abs=0.02)


def test_hot_hit_fraction_close_to_target(dtr_workload):
    assert dtr_workload.hot_hit_fraction() == pytest.approx(0.83, abs=0.04)


def test_timestamps_monotonic(dtr_workload):
    stamps = [r.timestamp for r in dtr_workload.trace.records]
    assert all(b >= a for a, b in zip(stamps, stamps[1:]))


def test_all_paths_resolvable(dtr_workload):
    tree = dtr_workload.tree
    assert all(tree.lookup(r.path) is not None for r in dtr_workload.trace.records)


def test_client_ids_in_range():
    workload = TraceGenerator(
        DatasetProfile.lmbe(num_nodes=1200, scale=2e-5), num_clients=7
    ).generate()
    assert all(0 <= r.client_id < 7 for r in workload.trace.records)


# ----------------------------------------------------------------------
# Popularity / update-cost backfill
# ----------------------------------------------------------------------
def test_popularity_matches_trace_counts(dtr_workload):
    tree, trace = dtr_workload.tree, dtr_workload.trace
    counts = {}
    for record in trace.records:
        counts[record.path] = counts.get(record.path, 0) + 1
    for path, count in list(counts.items())[:50]:
        assert tree.lookup(path).individual_popularity == count


def test_total_popularity_equals_trace_length(dtr_workload):
    assert dtr_workload.tree.total_popularity == pytest.approx(
        len(dtr_workload.trace)
    )


def test_update_costs_include_floor(dtr_workload):
    assert all(n.update_cost >= STRUCTURAL_UPDATE_COST for n in dtr_workload.tree)


def test_update_costs_reflect_update_ops(dtr_workload):
    tree, trace = dtr_workload.tree, dtr_workload.trace
    updates = {}
    for record in trace.records:
        if record.op is OpType.UPDATE:
            updates[record.path] = updates.get(record.path, 0) + 1
    for path, count in list(updates.items())[:20]:
        assert tree.lookup(path).update_cost == pytest.approx(
            STRUCTURAL_UPDATE_COST + count
        )


# ----------------------------------------------------------------------
# Determinism and caching
# ----------------------------------------------------------------------
def test_generation_deterministic():
    profile = DatasetProfile.ra(num_nodes=800, scale=6e-6)
    a = TraceGenerator(profile).generate()
    b = TraceGenerator(profile).generate()
    assert [r.path for r in a.trace.records] == [r.path for r in b.trace.records]


def test_load_workload_cached():
    profile = DatasetProfile.ra(num_nodes=800, scale=6e-6)
    a = load_workload(profile)
    b = load_workload(profile)
    assert a is b


def test_drift_shifts_hot_ranking():
    profile = DatasetProfile.dtr(num_nodes=1500, scale=2e-4)
    workload = TraceGenerator(profile).generate()
    rounds = workload.trace.rounds(profile.drift_phases)
    first, last = rounds[0], rounds[-1]

    def top_paths(piece):
        counts = {}
        for record in piece.records:
            counts[record.path] = counts.get(record.path, 0) + 1
        return {p for p, _ in sorted(counts.items(), key=lambda kv: -kv[1])[:10]}

    # Diurnal drift: the hottest paths at the end differ from the start.
    assert top_paths(first) != top_paths(last)
