"""SimNetwork: lossy, partitionable message fabric semantics."""

import random

import pytest

from repro.simulation import CLIENT_ADDR, NetworkModel, SimNetwork, mds_addr, mon_addr


# ----------------------------------------------------------------------
# Healthy path (the legacy NetworkModel surface)
# ----------------------------------------------------------------------
def test_alias_and_constant_hop():
    assert NetworkModel is SimNetwork
    net = SimNetwork(hop_latency=2e-4)
    assert net.hop() == 2e-4
    assert not net.faulty


def test_jitter_is_deterministic_triangle_wave():
    a = SimNetwork(hop_latency=1e-3, jitter=1e-4)
    b = SimNetwork(hop_latency=1e-3, jitter=1e-4)
    seq_a = [a.hop() for _ in range(40)]
    seq_b = [b.hop() for _ in range(40)]
    assert seq_a == seq_b
    assert min(seq_a) >= 1e-3 and max(seq_a) <= 1e-3 + 1e-4
    assert len(set(seq_a)) > 1


def test_rejects_negative_latencies():
    with pytest.raises(ValueError):
        SimNetwork(hop_latency=-1.0)
    with pytest.raises(ValueError):
        SimNetwork(jitter=-0.1)


def test_fault_free_path_makes_zero_rng_draws():
    # The byte-identity contract: while no fault is installed, deliveries
    # never touch the fault RNG and arrival times pass through unchanged.
    net = SimNetwork(seed=7)
    before = net._rng.getstate()
    assert net.deliver(mds_addr(0), mon_addr(0), 1.5) == 1.5
    assert net.client_arrival(2, 0.25) == 0.25
    assert net.server_arrival(0, 1, 0.5) == 0.5
    assert net._rng.getstate() == before
    assert net.messages_dropped == 0 and net.messages_delayed == 0


# ----------------------------------------------------------------------
# Mutes (the drop_heartbeats realisation)
# ----------------------------------------------------------------------
def test_mute_drops_control_plane_both_directions():
    net = SimNetwork()
    net.mute(mds_addr(1))
    assert net.faulty
    assert net.deliver(mds_addr(1), mon_addr(0), 1.0) is None
    assert net.deliver(mon_addr(0), mds_addr(1), 1.0) is None
    assert net.deliver(mds_addr(0), mon_addr(0), 1.0) == 1.0
    # ... but not the data plane: a muted server still serves clients.
    assert net.client_arrival(1, 1.0) == 1.0
    net.unmute(mds_addr(1))
    assert not net.faulty
    assert net.deliver(mds_addr(1), mon_addr(0), 1.0) == 1.0


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def test_partition_splits_interconnect_but_not_clients():
    net = SimNetwork()
    net.partition("p", [[mds_addr(0), mds_addr(1)], [mds_addr(2), mon_addr(0)]])
    assert not net.reachable(mds_addr(0), mds_addr(2))
    assert net.reachable(mds_addr(0), mds_addr(1))
    assert net.reachable(mds_addr(2), mon_addr(0))
    # Server 0's heartbeats die at the partition ...
    assert net.deliver(mds_addr(0), mon_addr(0), 1.0) is None
    assert net.server_arrival(0, 2, 1.0) is None
    # ... but the WAN is not the cluster interconnect: clients still reach
    # both sides (which is what makes false eviction observable).
    assert net.client_arrival(0, 1.0) == 1.0
    assert net.client_arrival(2, 1.0) == 1.0


def test_unlisted_endpoints_ride_with_group_zero():
    net = SimNetwork()
    net.partition("p", [[mds_addr(0)], [mds_addr(1)]])
    # mon:0 is not named, so it sits with group 0 and server 1 is cut off.
    assert net.deliver(mds_addr(0), mon_addr(0), 1.0) == 1.0
    assert net.deliver(mds_addr(1), mon_addr(0), 1.0) is None


def test_heal_by_name_and_heal_all():
    net = SimNetwork()
    net.partition("a", [[mds_addr(0)], [mds_addr(1)]])
    net.partition("b", [[mds_addr(2)], [mds_addr(3)]])
    assert net.partitions() == ("a", "b")
    net.heal("a")
    assert net.partitions() == ("b",)
    assert net.reachable(mds_addr(0), mds_addr(1))
    net.heal(None)
    assert net.partitions() == ()
    assert not net.faulty


def test_overlapping_partitions_compose():
    # Two endpoints communicate iff they share a group in EVERY partition.
    net = SimNetwork()
    net.partition("a", [[mds_addr(0), mds_addr(1)], [mds_addr(2)]])
    net.partition("b", [[mds_addr(0)], [mds_addr(1), mds_addr(2)]])
    assert not net.reachable(mds_addr(0), mds_addr(1))  # split by b
    assert not net.reachable(mds_addr(1), mds_addr(2))  # split by a
    assert not net.reachable(mds_addr(0), mds_addr(2))  # split by both


def test_partition_validation():
    net = SimNetwork()
    with pytest.raises(ValueError):
        net.partition("p", [[mds_addr(0)]])  # one group is no partition
    with pytest.raises(ValueError):
        net.partition("p", [[mds_addr(0)], []])  # empty group


# ----------------------------------------------------------------------
# Loss
# ----------------------------------------------------------------------
def test_blackhole_loss_drops_everything():
    net = SimNetwork(seed=3)
    net.set_loss(mds_addr(1), 1.0)
    assert net.deliver(mds_addr(1), mon_addr(0), 1.0) is None
    assert net.client_arrival(1, 1.0) is None
    assert net.server_arrival(0, 1, 1.0) is None
    assert net.messages_dropped == 3
    # Other servers' links are untouched.
    assert net.client_arrival(0, 1.0) == 1.0


def test_partial_loss_is_seeded_and_partial():
    def drops(seed):
        net = SimNetwork(seed=seed)
        net.set_loss(mds_addr(0), 0.5)
        return [net.client_arrival(0, 1.0) is None for _ in range(200)]

    first, second = drops(11), drops(11)
    assert first == second  # deterministic given the send sequence
    assert 0 < sum(first) < 200  # actually partial
    assert drops(12) != first  # and seed-dependent


def test_loss_probability_validated_and_clearable():
    net = SimNetwork()
    with pytest.raises(ValueError):
        net.set_loss(mds_addr(0), 1.5)
    net.set_loss(mds_addr(0), 0.5)
    assert net.faulty
    net.set_loss(mds_addr(0), 0.0)
    assert not net.faulty


# ----------------------------------------------------------------------
# Delay
# ----------------------------------------------------------------------
def test_delay_adds_bounded_seeded_extra_latency():
    net = SimNetwork(seed=5)
    net.set_delay(mds_addr(0), 1e-3)
    arrivals = [net.client_arrival(0, 1.0) for _ in range(100)]
    assert all(1.0 <= t < 1.0 + 2e-3 for t in arrivals)
    assert len(set(arrivals)) > 1  # uniform draws, not a constant
    assert net.messages_delayed == 100
    net.set_delay(mds_addr(0), 0.0)
    assert not net.faulty
    with pytest.raises(ValueError):
        net.set_delay(mds_addr(0), -1.0)


def test_delay_sums_over_both_endpoints():
    net = SimNetwork(seed=5)
    net.set_delay(mds_addr(0), 1e-3)
    net.set_delay(mds_addr(1), 1e-3)
    arrivals = [net.server_arrival(0, 1, 1.0) for _ in range(100)]
    assert max(arrivals) > 1.0 + 2e-3  # mean doubled: draws reach past 2ms


# ----------------------------------------------------------------------
# recover path
# ----------------------------------------------------------------------
def test_clear_endpoint_wipes_all_per_endpoint_faults():
    net = SimNetwork(seed=2)
    net.mute(mds_addr(1))
    net.set_loss(mds_addr(1), 0.5)
    net.set_delay(mds_addr(1), 1e-3)
    net.clear_endpoint(mds_addr(1))
    assert not net.faulty
    assert net.deliver(mds_addr(1), mon_addr(0), 1.0) == 1.0


def test_client_addr_is_not_partitionable():
    net = SimNetwork()
    net.partition("p", [[mds_addr(0)], [mds_addr(1), CLIENT_ADDR]])
    # Even named into a group, client sends ignore partitions by design.
    assert net.client_arrival(0, 1.0) == 1.0
