"""Tests for the telemetry subsystem (repro.obs)."""

import io
import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_TELEMETRY,
    GaugeSampler,
    MetricsRegistry,
    Telemetry,
    events_to_csv,
    prometheus_text,
    read_jsonl,
    render_dashboard,
    samples_to_csv,
    split_runs,
    write_jsonl,
)
from repro.viz import sparkline


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("ops", help="operations")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert registry.help_text("ops") == "operations"


def test_gauge_set_and_inc():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(4)
    gauge.inc(-1.5)
    assert gauge.value == 2.5


def test_histogram_buckets_cumulate():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(6.05)
    assert hist.cumulative() == [(0.1, 1), (1.0, 3), (float("inf"), 4)]


def test_registry_caches_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("retries", server=3)
    b = registry.counter("retries", server=3)
    c = registry.counter("retries", server=4)
    assert a is b
    assert a is not c
    assert len(registry) == 2


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_disabled_registry_hands_out_shared_noop():
    registry = MetricsRegistry(enabled=False)
    metric = registry.counter("anything", server=1)
    assert metric is registry.histogram("other")
    metric.inc()
    metric.observe(3.0)
    metric.set(9.0)
    assert metric.value == 0.0
    assert len(registry) == 0
    assert list(registry.collect()) == []


def test_collect_is_sorted():
    registry = MetricsRegistry()
    registry.gauge("zeta")
    registry.gauge("alpha", server=1)
    registry.gauge("alpha", server=0)
    names = [(m.name, m.labels) for m in registry.collect()]
    assert names == sorted(names)


# ----------------------------------------------------------------------
# Telemetry hub
# ----------------------------------------------------------------------
def test_event_stamps_with_pushed_clock():
    telemetry = Telemetry()
    telemetry.set_time(1.5)
    telemetry.event("fault_crash", server=2)
    telemetry.event("late", t=9.0)
    assert telemetry.events[0].t == 1.5
    assert telemetry.events[0].to_record() == {
        "kind": "event", "t": 1.5, "event": "fault_crash", "server": 2,
    }
    assert telemetry.events[1].t == 9.0


def test_op_event_gated_by_record_ops():
    telemetry = Telemetry(record_ops=False)
    telemetry.op_event("op_start", op=telemetry.next_op_id(), path="/a")
    telemetry.event("fault_crash", server=1)
    assert [e.event for e in telemetry.events] == ["fault_crash"]


def test_record_sample_nullifies_non_finite():
    telemetry = Telemetry()
    telemetry.record_sample(0.1, "balance", float("inf"))
    telemetry.record_sample(0.2, "balance", float("nan"))
    telemetry.record_sample(0.3, "balance", 2.0, server=1)
    values = [s.value for s in telemetry.samples]
    assert values == [None, None, 2.0]
    assert telemetry.samples[2].labels == (("server", "1"),)


def test_iter_records_header_and_merge_order():
    telemetry = Telemetry(run_info={"scheme": "d2-tree", "seed": 7})
    telemetry.set_time(0.5)
    telemetry.event("b")
    telemetry.record_sample(0.2, "g", 1.0)
    telemetry.event("a", t=0.2)  # same t as the sample, later seq
    records = list(telemetry.iter_records())
    assert records[0] == {"kind": "run", "schema": 2,
                          "scheme": "d2-tree", "seed": 7}
    assert [(r["kind"], r["t"]) for r in records[1:]] == [
        ("sample", 0.2), ("event", 0.2), ("event", 0.5),
    ]


def test_sample_series_groups_by_labels():
    telemetry = Telemetry()
    telemetry.record_sample(0.1, "load", 1.0, server=0)
    telemetry.record_sample(0.1, "load", 2.0, server=1)
    telemetry.record_sample(0.2, "load", 3.0, server=0)
    series = telemetry.sample_series("load")
    assert series[(("server", "0"),)] == [(0.1, 1.0), (0.2, 3.0)]
    assert series[(("server", "1"),)] == [(0.1, 2.0)]


def test_null_telemetry_is_inert():
    NULL_TELEMETRY.event("anything", server=1)
    NULL_TELEMETRY.record_sample(0.0, "g", 1.0)
    assert NULL_TELEMETRY.events == []
    assert NULL_TELEMETRY.samples == []
    assert not NULL_TELEMETRY.enabled


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
def test_sampler_scalar_and_vector_probes():
    telemetry = Telemetry()
    sampler = GaugeSampler(telemetry)
    sampler.add("balance", lambda: 0.5)
    sampler.add_vector("load", lambda: [1.0, 2.0], "server")
    sampler.snapshot(0.1)
    sampler.snapshot(0.2)
    assert sampler.snapshots == 2
    assert telemetry.sample_series("balance")[()] == [(0.1, 0.5), (0.2, 0.5)]
    assert telemetry.sample_series("load")[(("server", "1"),)] == [
        (0.1, 2.0), (0.2, 2.0),
    ]
    # The registry mirror holds the latest grid value.
    assert telemetry.registry.gauge("load", server=0).value == 1.0


def test_sampler_disabled_registers_nothing():
    sampler = GaugeSampler(NULL_TELEMETRY)
    sampler.add("balance", lambda: 1 / 0)  # would raise if ever called
    sampler.snapshot(0.1)
    assert sampler.snapshots == 0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _tiny_telemetry():
    telemetry = Telemetry(run_info={"scheme": "t"})
    telemetry.set_time(0.1)
    telemetry.event("fault_crash", server=2)
    telemetry.record_sample(0.2, "load", 1.5, server=0)
    return telemetry


def test_jsonl_round_trip_with_summary(tmp_path):
    path = tmp_path / "run.jsonl"
    count = write_jsonl(_tiny_telemetry(), path, summary={"throughput": 9.0})
    records = read_jsonl(path)
    assert count == len(records) == 4
    assert [r["kind"] for r in records] == ["run", "event", "sample", "summary"]
    assert records[3]["throughput"] == 9.0


def test_jsonl_append_keeps_both_runs(tmp_path):
    path = tmp_path / "runs.jsonl"
    write_jsonl(_tiny_telemetry(), path)
    write_jsonl(_tiny_telemetry(), path, append=True)
    runs = split_runs(read_jsonl(path))
    assert len(runs) == 2
    assert all(run[0]["kind"] == "run" for run in runs)


def test_jsonl_lines_are_sorted_key_json():
    buffer = io.StringIO()
    write_jsonl(_tiny_telemetry(), buffer)
    for line in buffer.getvalue().splitlines():
        assert line == json.dumps(json.loads(line), sort_keys=True,
                                  separators=(",", ":"))


def test_csv_exports():
    records = list(_tiny_telemetry().iter_records())
    samples = io.StringIO()
    events = io.StringIO()
    assert samples_to_csv(records, samples) == 1
    assert events_to_csv(records, events) == 1
    sample_lines = samples.getvalue().splitlines()
    assert sample_lines[0] == "t,name,labels,value"
    assert sample_lines[1] == "0.2,load,server=0,1.5"
    event_lines = events.getvalue().splitlines()
    assert event_lines[0] == "t,event,op,fields"
    assert event_lines[1].startswith("0.1,fault_crash,")


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("ops", help="completed ops").inc(3)
    registry.gauge("load", server=0).set(1.5)
    hist = registry.histogram("lat", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(5.0)
    text = prometheus_text(registry)
    assert "# HELP repro_ops_total completed ops" in text
    assert "# TYPE repro_ops_total counter" in text
    assert "repro_ops_total 3" in text
    assert 'repro_load{server="0"} 1.5' in text
    assert 'repro_lat_bucket{le="0.1"} 1' in text
    assert 'repro_lat_bucket{le="+Inf"} 2' in text
    assert "repro_lat_sum 5.05" in text
    assert "repro_lat_count 2" in text


def test_prometheus_empty_registry():
    assert prometheus_text(MetricsRegistry()) == ""


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
def test_split_runs_handles_headerless_stream():
    records = [{"kind": "sample", "t": 0.0, "name": "g", "value": 1.0}]
    runs = split_runs(records)
    assert len(runs) == 1 and runs[0] == records


def test_render_dashboard_sections():
    telemetry = Telemetry(run_info={"scheme": "d2-tree"})
    telemetry.set_time(0.1)
    telemetry.event("fault_crash", server=2)
    for i, t in enumerate((0.1, 0.2, 0.3)):
        telemetry.record_sample(t, "load_factor", float(i), server=0)
        telemetry.record_sample(t, "balance_degree", 0.5)
    records = list(telemetry.iter_records())
    records.append({"kind": "summary", "throughput": 100.0,
                    "latency": {"p50": 0.01, "p95": 0.02, "p99": 0.03}})
    text = render_dashboard(records)
    assert "run: scheme=d2-tree" in text
    assert "per-server load factor" in text
    assert "server=0" in text
    assert "balance_degree" in text
    assert "fault_crash=1" in text
    assert "timeline" in text
    assert "p50=10.00ms" in text


def test_render_dashboard_truncates_timeline():
    telemetry = Telemetry()
    for i in range(30):
        telemetry.event("fault_crash", t=float(i), server=i)
    text = render_dashboard(list(telemetry.iter_records()), max_timeline=5)
    assert "... 25 more" in text


# ----------------------------------------------------------------------
# Sparkline
# ----------------------------------------------------------------------
def test_sparkline_ramp_and_flat():
    ramp = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
    assert len(ramp) == 4
    assert ramp[0] == "▁" and ramp[-1] == "█"
    flat = sparkline([5.0, 5.0, 5.0], width=3)
    assert flat == "▁▁▁"
    assert sparkline([], width=4) == ""


def test_sparkline_resamples_long_series():
    values = [float(i) for i in range(100)]
    spark = sparkline(values, width=10)
    assert len(spark) == 10
    assert spark[0] == "▁" and spark[-1] == "█"


# ----------------------------------------------------------------------
# End-to-end determinism: same seed -> identical telemetry bytes
# ----------------------------------------------------------------------
def _replay_telemetry():
    from repro.core import D2TreeScheme
    from repro.simulation import FaultPlan, SimulationConfig, simulate
    from repro.traces import DatasetProfile, load_workload

    workload = load_workload(DatasetProfile.dtr(num_nodes=600, scale=1e-5))
    config = SimulationConfig(fault_plan=FaultPlan.parse(["crash:1@ops=50"]))
    telemetry = Telemetry(run_info={"scheme": "d2-tree", "seed": 0})
    simulate(D2TreeScheme(), workload, 4, config, telemetry=telemetry)
    buffer = io.StringIO()
    write_jsonl(telemetry, buffer)
    return buffer.getvalue()


def test_telemetry_is_deterministic_across_runs():
    assert _replay_telemetry() == _replay_telemetry()


def test_replay_emits_fault_lifecycle_events():
    stream = _replay_telemetry()
    events = [json.loads(line) for line in stream.splitlines()]
    names = {e.get("event") for e in events if e["kind"] == "event"}
    assert "fault_crash" in names
    assert "failure_detected" in names
    assert "heartbeat_round" in names
    crash = next(e for e in events if e.get("event") == "fault_crash")
    detected = next(e for e in events if e.get("event") == "failure_detected")
    assert detected["t"] > crash["t"]
    assert detected["latency"] == pytest.approx(detected["t"] - crash["t"])
    # load_factor series exists for every server
    servers = {
        e["labels"]["server"]
        for e in events
        if e["kind"] == "sample" and e["name"] == "load_factor"
    }
    assert servers == {"0", "1", "2", "3"}


def test_disabled_telemetry_matches_untraced_run():
    from repro.core import D2TreeScheme
    from repro.simulation import simulate
    from repro.traces import DatasetProfile, load_workload

    workload = load_workload(DatasetProfile.dtr(num_nodes=600, scale=1e-5))
    plain = simulate(D2TreeScheme(), workload, 4)
    traced = simulate(D2TreeScheme(), workload, 4, telemetry=Telemetry())
    assert plain.throughput == traced.throughput
    assert plain.latency == traced.latency
    assert plain.server_visits == traced.server_visits


# ----------------------------------------------------------------------
# Context-manager exporters
# ----------------------------------------------------------------------
def test_jsonl_exporter_flushes_on_exception(tmp_path):
    from repro.obs import JsonlExporter

    telemetry = Telemetry()
    telemetry.event("fault_crash", t=0.5, server=1)
    path = tmp_path / "partial.jsonl"
    with pytest.raises(RuntimeError):
        with JsonlExporter(telemetry, str(path)) as exporter:
            raise RuntimeError("mid-run crash")
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records[0]["kind"] == "run"
    assert any(r.get("event") == "fault_crash" for r in records)
    # The summary was never reached, so no summary record was written.
    assert all(r["kind"] != "summary" for r in records)
    assert exporter.count == len(records)


def test_jsonl_exporter_writes_summary_and_appends(tmp_path):
    from repro.obs import JsonlExporter

    path = tmp_path / "runs.jsonl"
    for run_index in range(2):
        telemetry = Telemetry()
        with JsonlExporter(
            telemetry, str(path), append=run_index > 0
        ) as exporter:
            exporter.set_summary({"throughput": float(run_index)})
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["kind"] for r in records].count("run") == 2
    assert [r["kind"] for r in records].count("summary") == 2


def test_csv_and_prometheus_exporters_flush_on_exception(tmp_path):
    from repro.obs import CsvExporter, PrometheusExporter

    telemetry = Telemetry()
    telemetry.record_sample(0.1, "load", 1.0, server=0)
    telemetry.event("fault_crash", t=0.2, server=1)
    telemetry.registry.counter("ops", help="ops").inc(3)
    prefix = tmp_path / "run"
    prom = tmp_path / "metrics.prom"
    with pytest.raises(RuntimeError):
        with CsvExporter(telemetry, str(prefix)), \
                PrometheusExporter(telemetry, str(prom)):
            raise RuntimeError("mid-run crash")
    assert "load" in (tmp_path / "run.samples.csv").read_text()
    assert "fault_crash" in (tmp_path / "run.events.csv").read_text()
    assert "repro_ops_total 3" in prom.read_text()
