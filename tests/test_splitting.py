"""Unit tests for Tree-Splitting (Algorithm 1)."""

import pytest

from repro.core import (
    NamespaceTree,
    constraints_for_proportion,
    split_by_proportion,
    split_top_k,
    tree_split,
)
from tests.conftest import build_random_tree


def popular_tree():
    tree = NamespaceTree()
    hot = tree.add_path("/hot", is_directory=True)
    for i in range(5):
        tree.record_access(tree.add_path(f"/hot/f{i}"), weight=100.0)
    for i in range(5):
        tree.record_access(tree.add_path(f"/cold/c{i}"), weight=1.0)
    for node in tree:
        node.update_cost = 1.0
    tree.aggregate_popularity()
    return tree, hot


def test_root_always_in_global_layer():
    tree, _hot = popular_tree()
    result = split_top_k(tree, 1)
    assert result.global_layer == {tree.root}


def test_greedy_picks_most_popular_first():
    tree, hot = popular_tree()
    result = split_top_k(tree, 2)
    assert result.global_layer == {tree.root, hot}


def test_global_layer_is_connected():
    tree = build_random_tree(300)
    result = split_top_k(tree, 30)
    for node in result.global_layer:
        assert node.parent is None or node.parent in result.global_layer


def test_local_popularity_matches_eq7():
    tree = build_random_tree(300)
    result = split_top_k(tree, 25)
    expected = sum(n.popularity for n in tree if n not in result.global_layer)
    assert result.local_popularity == pytest.approx(expected)


def test_update_cost_sums_gl_members_minus_root():
    tree, _ = popular_tree()
    result = split_top_k(tree, 4)
    expected = sum(n.update_cost for n in result.global_layer if not n.is_root)
    assert result.update_cost == pytest.approx(expected)


def test_subtree_roots_are_local_children_of_inter_nodes():
    tree = build_random_tree(300)
    result = split_top_k(tree, 20)
    for root in result.subtree_roots:
        assert root not in result.global_layer
        assert root.parent in result.global_layer
    for inter in result.inter_nodes:
        assert inter in result.global_layer
        assert any(c not in result.global_layer for c in inter.children)


def test_subtree_roots_partition_local_layer():
    tree = build_random_tree(300)
    result = split_top_k(tree, 20)
    covered = set()
    for root in result.subtree_roots:
        covered.add(root)
        covered.update(root.descendants())
    local = {n for n in tree if n not in result.global_layer}
    assert covered == local


def test_tree_split_respects_update_budget():
    tree, _ = popular_tree()
    # Budget allows 2 additions (cost 1 each, stop when >= U0).
    result = tree_split(tree, locality_threshold=0.0, update_threshold=2.5)
    if result.feasible:
        assert result.update_cost < 2.5
    else:
        assert result.global_layer == set()


def test_tree_split_infeasible_returns_empty():
    tree, _ = popular_tree()
    # Impossible: zero update budget but demanding near-zero local popularity.
    result = tree_split(tree, locality_threshold=0.0, update_threshold=0.0)
    assert not result.feasible
    assert result.global_layer == set()


def test_tree_split_feasible_when_budget_ample():
    tree, _ = popular_tree()
    total = sum(n.popularity for n in tree)
    result = tree_split(tree, locality_threshold=total, update_threshold=1e9)
    assert result.feasible
    # Locality already satisfied at the root: nothing needs absorbing.
    assert result.global_layer == {tree.root}


def test_tree_split_stops_at_locality_threshold():
    tree, _ = popular_tree()
    result = tree_split(tree, locality_threshold=10.0, update_threshold=1e9)
    assert result.feasible
    assert result.local_popularity <= 10.0


def test_tree_split_negative_thresholds_rejected():
    tree, _ = popular_tree()
    with pytest.raises(ValueError):
        tree_split(tree, -1.0, 10.0)
    with pytest.raises(ValueError):
        tree_split(tree, 1.0, -10.0)


def test_split_top_k_rejects_zero():
    tree, _ = popular_tree()
    with pytest.raises(ValueError):
        split_top_k(tree, 0)


def test_split_top_k_exact_size():
    tree = build_random_tree(200)
    for k in (1, 5, 20, 50):
        result = split_top_k(tree, k)
        assert len(result.global_layer) == k


def test_split_top_k_larger_than_tree():
    tree, _ = popular_tree()
    result = split_top_k(tree, 10_000)
    assert result.global_layer == set(tree.nodes)
    assert result.subtree_roots == []
    assert result.local_popularity == pytest.approx(0.0)


def test_split_by_proportion_default_paper_setting():
    tree = build_random_tree(500)
    result = split_by_proportion(tree, 0.01)
    assert len(result.global_layer) == max(1, round(0.01 * len(tree)))


def test_split_by_proportion_bounds():
    tree, _ = popular_tree()
    with pytest.raises(ValueError):
        split_by_proportion(tree, 0.0)
    with pytest.raises(ValueError):
        split_by_proportion(tree, 1.5)


def test_locality_property_of_result():
    tree = build_random_tree(300)
    result = split_top_k(tree, 10)
    assert result.locality == pytest.approx(1.0 / result.local_popularity)
    full = split_top_k(tree, len(tree))
    assert full.locality == float("inf")


def test_larger_global_layer_improves_locality_monotonically():
    tree = build_random_tree(400)
    previous = -1.0
    for k in (1, 10, 40, 100, 200):
        result = split_top_k(tree, k)
        assert result.locality >= previous or result.locality == float("inf")
        previous = result.locality


def test_constraints_for_proportion_roundtrip():
    tree = build_random_tree(400)
    constraints = constraints_for_proportion(tree, 0.05)
    assert constraints.global_layer_size == len(constraints.result.global_layer)
    assert constraints.locality_threshold == pytest.approx(
        constraints.result.local_popularity
    )
    assert constraints.update_threshold == pytest.approx(constraints.result.update_cost)


def test_constraints_grow_with_proportion():
    tree = build_random_tree(400)
    small = constraints_for_proportion(tree, 0.01)
    large = constraints_for_proportion(tree, 0.2)
    # More GL nodes -> more update cost, less local popularity (L0 shrinks).
    assert large.update_threshold >= small.update_threshold
    assert large.locality_threshold <= small.locality_threshold


def test_rerun_after_tree_split_fails_is_safe():
    tree, _ = popular_tree()
    bad = tree_split(tree, 0.0, 0.0)
    assert not bad.feasible
    good = split_by_proportion(tree, 0.5)
    assert good.feasible
