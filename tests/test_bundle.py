"""Tests for workload bundle persistence."""

import dataclasses
import json

import pytest

from repro.core import D2TreeScheme
from repro.metrics import evaluate_scheme
from repro.traces import DatasetProfile, TraceGenerator
from repro.traces.bundle import load_workload_bundle, save_workload


@pytest.fixture(scope="module")
def workload():
    profile = dataclasses.replace(
        DatasetProfile.ra(num_nodes=900, scale=8e-6), create_fraction=0.1
    )
    return TraceGenerator(profile, num_clients=10).generate()


def test_roundtrip_tree_structure(tmp_path, workload):
    path = tmp_path / "wl.jsonl"
    save_workload(workload, path)
    loaded = load_workload_bundle(path)
    assert len(loaded.tree) == len(workload.tree)
    assert loaded.tree.depth() == workload.tree.depth()
    for node in workload.tree:
        twin = loaded.tree.lookup(node.path)
        assert twin is not None
        assert twin.is_directory == node.is_directory
        assert twin.individual_popularity == pytest.approx(node.individual_popularity)
        assert twin.update_cost == pytest.approx(node.update_cost)


def test_roundtrip_trace(tmp_path, workload):
    path = tmp_path / "wl.jsonl"
    save_workload(workload, path)
    loaded = load_workload_bundle(path)
    assert len(loaded.trace) == len(workload.trace)
    assert loaded.trace.records[:50] == workload.trace.records[:50]
    assert loaded.trace.name == workload.trace.name


def test_roundtrip_metadata(tmp_path, workload):
    path = tmp_path / "wl.jsonl"
    save_workload(workload, path)
    loaded = load_workload_bundle(path)
    assert loaded.profile == workload.profile
    assert {n.path for n in loaded.hot_nodes} == {n.path for n in workload.hot_nodes}
    assert loaded.late_created_paths == workload.late_created_paths


def test_loaded_workload_evaluates_identically(tmp_path, workload):
    path = tmp_path / "wl.jsonl"
    save_workload(workload, path)
    loaded = load_workload_bundle(path)
    original = evaluate_scheme(D2TreeScheme(), workload.tree, 4)
    replayed = evaluate_scheme(D2TreeScheme(), loaded.tree, 4)
    assert replayed.locality == pytest.approx(original.locality)
    assert replayed.balance == pytest.approx(original.balance)


def test_rejects_non_bundle(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"kind": "something-else"}) + "\n")
    with pytest.raises(ValueError):
        load_workload_bundle(path)


def test_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"kind": "repro-workload-bundle", "version": 99}) + "\n"
    )
    with pytest.raises(ValueError):
        load_workload_bundle(path)


def test_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError):
        load_workload_bundle(path)
