"""Tests for trace (de)serialization."""

import pytest

from repro.traces import (
    DatasetProfile,
    OpType,
    Trace,
    TraceGenerator,
    TraceRecord,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
)


def small_trace():
    return Trace(
        name="sample",
        description="a small test trace",
        records=[
            TraceRecord(0.5, OpType.READ, "/a/b.txt", 1),
            TraceRecord(1.25, OpType.UPDATE, "/a", 2),
            TraceRecord(2.0, OpType.WRITE, "/c d/e.txt", 0),
        ],
    )


def test_roundtrip_in_memory():
    trace = small_trace()
    parsed = loads_trace(dumps_trace(trace))
    assert parsed.name == trace.name
    assert parsed.description == trace.description
    assert parsed.records == trace.records


def test_roundtrip_via_file(tmp_path):
    trace = small_trace()
    path = tmp_path / "trace.tsv"
    save_trace(trace, path)
    parsed = load_trace(path)
    assert parsed.records == trace.records


def test_paths_with_spaces_survive():
    parsed = loads_trace(dumps_trace(small_trace()))
    assert parsed.records[2].path == "/c d/e.txt"


def test_missing_header_rejected():
    with pytest.raises(ValueError):
        loads_trace("1.0\tread\t0\t/a\n")


def test_malformed_line_rejected():
    text = dumps_trace(small_trace()) + "not-enough-fields\n"
    with pytest.raises(ValueError):
        loads_trace(text)


def test_malformed_header_rejected():
    with pytest.raises(ValueError):
        loads_trace("#trace\n")


def test_blank_lines_skipped():
    text = dumps_trace(small_trace()) + "\n\n"
    parsed = loads_trace(text)
    assert len(parsed) == 3


def test_description_newlines_flattened():
    trace = Trace(name="x", description="line1\nline2", records=[])
    parsed = loads_trace(dumps_trace(trace))
    assert "\n" not in parsed.description


def test_generated_workload_roundtrip(tmp_path):
    workload = TraceGenerator(DatasetProfile.ra(num_nodes=600, scale=5e-6)).generate()
    path = tmp_path / "ra.tsv"
    save_trace(workload.trace, path)
    parsed = load_trace(path)
    assert len(parsed) == len(workload.trace)
    assert parsed.operation_breakdown() == workload.trace.operation_breakdown()


def test_empty_trace_roundtrip():
    trace = Trace(name="empty")
    parsed = loads_trace(dumps_trace(trace))
    assert parsed.records == []
