"""Tests for the Section V machinery: CDFs, DKW bounds, sampling sizes."""

import math
import random

import pytest

from repro.analysis import (
    EmpiricalCDF,
    Histogram,
    RandomWalkSampler,
    balance_bound,
    dkw_confidence,
    dkw_epsilon,
    run_bound_experiment,
    sample_size_for_mds_error,
    sample_size_for_subtree_error,
)
from tests.conftest import build_random_tree


# ----------------------------------------------------------------------
# EmpiricalCDF
# ----------------------------------------------------------------------
def test_cdf_basic_values():
    cdf = EmpiricalCDF([1, 2, 3, 4])
    assert cdf(0) == 0.0
    assert cdf(1) == 0.25
    assert cdf(2.5) == 0.5
    assert cdf(4) == 1.0
    assert cdf(100) == 1.0


def test_cdf_monotone():
    cdf = EmpiricalCDF([5, 1, 3, 3, 9])
    points = [0, 1, 2, 3, 4, 5, 6, 9, 10]
    values = [cdf(p) for p in points]
    assert values == sorted(values)


def test_cdf_empty_rejected():
    with pytest.raises(ValueError):
        EmpiricalCDF([])


def test_cdf_quantile_inverse():
    cdf = EmpiricalCDF([1, 2, 3, 4])
    assert cdf.quantile(0.25) == 1
    assert cdf.quantile(0.5) == 2
    assert cdf.quantile(1.0) == 4
    assert cdf.quantile(0.0) == 1


def test_cdf_quantile_validation():
    cdf = EmpiricalCDF([1])
    with pytest.raises(ValueError):
        cdf.quantile(1.5)


def test_cdf_sup_distance_self_zero():
    cdf = EmpiricalCDF([1, 2, 3])
    assert cdf.sup_distance(cdf) == 0.0


def test_cdf_sup_distance_symmetry():
    a = EmpiricalCDF([1, 2, 3, 4])
    b = EmpiricalCDF([2, 3, 4, 5])
    assert a.sup_distance(b) == pytest.approx(b.sup_distance(a))


# ----------------------------------------------------------------------
# Histogram (Def. 6)
# ----------------------------------------------------------------------
def test_histogram_equiprobable_bins():
    rng = random.Random(1)
    samples = [rng.random() for _ in range(5000)]
    hist = Histogram.from_samples(samples, bins=10)
    assert len(hist.boundaries) == 11
    assert hist.delta == pytest.approx(0.1)


def test_histogram_interval_of_clamps():
    hist = Histogram(boundaries=[0.0, 1.0, 2.0])
    assert hist.interval_of(-5) == 0
    assert hist.interval_of(0.5) == 0
    assert hist.interval_of(1.5) == 1
    assert hist.interval_of(99) == 1


def test_histogram_cdf_limits():
    hist = Histogram(boundaries=[0.0, 1.0, 2.0])
    assert hist.cdf(-1) == 0.0
    assert hist.cdf(5) == 1.0
    assert hist.cdf(1.0) == pytest.approx(0.5)


def test_histogram_cdf_piecewise_linear():
    hist = Histogram(boundaries=[0.0, 2.0])
    assert hist.cdf(1.0) == pytest.approx(0.5)


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram.from_samples([1.0], bins=0)


# ----------------------------------------------------------------------
# DKW bound (Thm. 2)
# ----------------------------------------------------------------------
def test_dkw_epsilon_shrinks_with_samples():
    assert dkw_epsilon(1000, 0.95) < dkw_epsilon(100, 0.95)


def test_dkw_epsilon_formula():
    expected = math.sqrt(math.log(2 / 0.05) / (2 * 200))
    assert dkw_epsilon(200, 0.95) == pytest.approx(expected)


def test_dkw_confidence_inverse_of_epsilon():
    eps = dkw_epsilon(500, 0.9)
    assert dkw_confidence(500, eps) == pytest.approx(0.9)


def test_dkw_confidence_zero_epsilon():
    assert dkw_confidence(100, 0.0) == 0.0


def test_dkw_validation():
    with pytest.raises(ValueError):
        dkw_epsilon(0, 0.9)
    with pytest.raises(ValueError):
        dkw_epsilon(10, 1.5)


def test_dkw_bound_holds_empirically():
    # Draw k samples from U[0,1]; the sup distance to the true CDF should be
    # below the 99% DKW epsilon almost always.
    rng = random.Random(42)
    k = 400
    eps = dkw_epsilon(k, 0.99)
    violations = 0
    for _ in range(30):
        cdf = EmpiricalCDF([rng.random() for _ in range(k)])
        sup = max(abs(cdf(x / 100) - x / 100) for x in range(101))
        if sup > eps:
            violations += 1
    assert violations <= 1


# ----------------------------------------------------------------------
# Random walk sampler
# ----------------------------------------------------------------------
def test_pool_sampling_uniformish():
    sampler = RandomWalkSampler(rng=random.Random(3))
    pool = list(range(10))
    samples = sampler.sample_pool(pool, 5000)
    counts = [samples.count(i) for i in pool]
    assert max(counts) < 2 * min(counts)


def test_pool_sampling_validation():
    sampler = RandomWalkSampler()
    with pytest.raises(ValueError):
        sampler.sample_pool([], 1)
    with pytest.raises(ValueError):
        sampler.sample_pool([1], -1)


def test_tree_walk_returns_nodes():
    tree = build_random_tree(120)
    sampler = RandomWalkSampler(rng=random.Random(5), burn_in=4)
    samples = sampler.walk_tree(tree.root, 50)
    assert len(samples) == 50
    valid = set(tree.nodes)
    assert all(node in valid for node in samples)


def test_tree_walk_visits_beyond_root():
    tree = build_random_tree(120)
    sampler = RandomWalkSampler(rng=random.Random(6), burn_in=6)
    samples = sampler.walk_tree(tree.root, 100)
    assert any(node is not tree.root for node in samples)


# ----------------------------------------------------------------------
# Sample-size calculators (Lemma 1 / Theorem 3)
# ----------------------------------------------------------------------
def test_subtree_sample_size_grows_with_precision():
    loose = sample_size_for_subtree_error(1000, 10.0, 1.0, delta=1.0)
    tight = sample_size_for_subtree_error(1000, 10.0, 1.0, delta=0.1)
    assert tight > loose


def test_subtree_sample_size_degenerate_spread():
    assert sample_size_for_subtree_error(1000, 5.0, 5.0, delta=0.1) == 1


def test_subtree_sample_size_validation():
    with pytest.raises(ValueError):
        sample_size_for_subtree_error(0, 1, 0, delta=0.1)
    with pytest.raises(ValueError):
        sample_size_for_subtree_error(10, 1, 0, delta=-1)
    with pytest.raises(ValueError):
        sample_size_for_subtree_error(10, 1, 0, delta=0.1, t=2.0)


def test_mds_sample_size_formula_shape():
    small_cap = sample_size_for_mds_error(
        500, capacity_share=0.1, max_popularity=5, min_popularity=1,
        delta=0.2, ideal_load_factor=1.0, capacity=1.0,
    )
    big_cap = sample_size_for_mds_error(
        500, capacity_share=0.1, max_popularity=5, min_popularity=1,
        delta=0.2, ideal_load_factor=1.0, capacity=4.0,
    )
    assert small_cap > big_cap


def test_mds_sample_size_validation():
    with pytest.raises(ValueError):
        sample_size_for_mds_error(10, 0.5, 1, 0, delta=0, ideal_load_factor=1, capacity=1)


# ----------------------------------------------------------------------
# Theorem 4 bound
# ----------------------------------------------------------------------
def test_balance_bound_formula():
    assert balance_bound(4, 0.1, 2.0) == pytest.approx(4 / 3 * (0.2) ** 2)


def test_balance_bound_validation():
    with pytest.raises(ValueError):
        balance_bound(1, 0.1, 1.0)
    with pytest.raises(ValueError):
        balance_bound(4, -0.1, 1.0)


def test_bound_experiment_runs_and_reports():
    rng = random.Random(9)
    pops = [rng.random() * 4 + 0.1 for _ in range(400)]
    result = run_bound_experiment(pops, [1.0] * 4, delta=0.5, rng=random.Random(1))
    assert result.num_subtrees == 400
    assert result.num_servers == 4
    assert result.bound > 0
    assert result.achieved_variance >= 0


def test_bound_experiment_validation():
    with pytest.raises(ValueError):
        run_bound_experiment([], [1.0, 1.0], delta=0.5)
    with pytest.raises(ValueError):
        run_bound_experiment([1.0], [1.0], delta=0.5)
