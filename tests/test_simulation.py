"""Tests for the discrete-event replay harness."""

import pytest

from repro.baselines import HashScheme, StaticSubtreeScheme
from repro.core import D2TreeScheme
from repro.simulation import (
    ClientPool,
    ClusterSimulator,
    NetworkModel,
    ResourceTimeline,
    SimulationConfig,
    replay_rounds,
    simulate,
    summarize_latencies,
)


# ----------------------------------------------------------------------
# Engine primitives
# ----------------------------------------------------------------------
def test_timeline_fifo():
    timeline = ResourceTimeline()
    assert timeline.serve(0.0, 1.0) == 1.0
    assert timeline.serve(0.5, 1.0) == 2.0
    assert timeline.serve(10.0, 1.0) == 11.0
    assert timeline.served == 3
    assert timeline.busy_time == pytest.approx(3.0)


def test_timeline_background_appends_without_gap():
    timeline = ResourceTimeline()
    timeline.serve(0.0, 1.0)
    timeline.serve_background(0.5)
    assert timeline.busy_until == pytest.approx(1.5)
    # Idle server: background work lands in the past (absorbed for free).
    idle = ResourceTimeline()
    idle.serve_background(0.25)
    assert idle.busy_until == pytest.approx(0.25)


def test_timeline_utilization():
    timeline = ResourceTimeline()
    timeline.serve(0.0, 2.0)
    assert timeline.utilization(4.0) == pytest.approx(0.5)
    assert timeline.utilization(0.0) == 0.0


def test_client_pool_closed_loop():
    pool = ClientPool(2)
    ready, cid = pool.next_ready()
    assert ready == 0.0
    pool.complete(cid, 5.0)
    ready2, cid2 = pool.next_ready()
    assert ready2 == 0.0  # the other client
    pool.complete(cid2, 3.0)
    ready3, cid3 = pool.next_ready()
    assert ready3 == 3.0 and cid3 == cid2


def test_client_pool_think_time():
    pool = ClientPool(1, think_time=1.0)
    _ready, cid = pool.next_ready()
    pool.complete(cid, 2.0)
    ready, _ = pool.next_ready()
    assert ready == 3.0


def test_client_pool_validation():
    with pytest.raises(ValueError):
        ClientPool(0)


def test_network_model():
    net = NetworkModel(hop_latency=0.01)
    assert net.hop() == 0.01
    jittery = NetworkModel(hop_latency=0.01, jitter=0.005)
    values = {jittery.hop() for _ in range(32)}
    assert len(values) > 1
    assert all(0.01 <= v <= 0.015 for v in values)


def test_network_validation():
    with pytest.raises(ValueError):
        NetworkModel(hop_latency=-1)


def test_latency_summary():
    summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.maximum == 4.0
    assert summarize_latencies([]).count == 0


# ----------------------------------------------------------------------
# Full replay
# ----------------------------------------------------------------------
FAST = SimulationConfig(num_clients=20, adjust_every_ops=400)


def test_simulate_d2(tiny_dtr_workload):
    result = simulate(D2TreeScheme(), tiny_dtr_workload, 4, FAST)
    assert result.operations == len(tiny_dtr_workload.trace)
    assert result.throughput > 0
    assert result.makespan > 0
    assert len(result.server_visits) == 4
    assert result.latency.count == result.operations


def test_simulate_generic_scheme(tiny_dtr_workload):
    result = simulate(StaticSubtreeScheme(), tiny_dtr_workload, 4, FAST)
    assert result.throughput > 0
    assert result.mean_jumps >= 0


def test_simulate_row_format(tiny_dtr_workload):
    result = simulate(D2TreeScheme(), tiny_dtr_workload, 4, FAST)
    row = result.row()
    assert "d2-tree" in row and "ops/s" in row


def test_hash_scheme_slower_than_d2(tiny_dtr_workload):
    # Under load (many clients per server) hashing's extra traversal visits
    # saturate the cluster first; at idle the difference is noise.
    loaded = SimulationConfig(num_clients=100, adjust_every_ops=400)
    d2 = simulate(D2TreeScheme(), tiny_dtr_workload, 4, loaded)
    hashed = simulate(HashScheme(), tiny_dtr_workload, 4, loaded)
    assert d2.throughput > hashed.throughput
    assert d2.mean_jumps < hashed.mean_jumps


def test_more_servers_more_throughput(tiny_dtr_workload):
    small = simulate(D2TreeScheme(), tiny_dtr_workload, 2, FAST)
    large = simulate(D2TreeScheme(), tiny_dtr_workload, 8, FAST)
    assert large.throughput > small.throughput


def test_utilizations_bounded(tiny_dtr_workload):
    result = simulate(D2TreeScheme(), tiny_dtr_workload, 4, FAST)
    assert all(0.0 <= u <= 1.0 for u in result.server_utilization)


def test_simulator_plan_routes_cover_target(tiny_dtr_workload):
    sim = ClusterSimulator(D2TreeScheme(), tiny_dtr_workload, 4, FAST)
    client = sim.clients[0]
    for record in tiny_dtr_workload.trace.records[:100]:
        node = sim.tree.lookup(record.path)
        plan = sim.plan_route(client, node, record.op)
        assert plan.visits
        final = plan.visits[-1].server
        assert final in sim.placement.servers_of(node)


def test_d2_update_plans_lock_and_fanout(tiny_dtr_workload):
    from repro.traces import OpType

    sim = ClusterSimulator(D2TreeScheme(), tiny_dtr_workload, 4, FAST)
    client = sim.clients[0]
    gl_node = next(iter(sim.placement.split.global_layer))
    plan = sim.plan_route(client, gl_node, OpType.UPDATE)
    assert plan.lock_key == gl_node.path
    assert len(plan.fanout) == 3


def test_deterministic_simulation(tiny_dtr_workload):
    a = simulate(D2TreeScheme(), tiny_dtr_workload, 4, FAST)
    b = simulate(D2TreeScheme(), tiny_dtr_workload, 4, FAST)
    assert a.throughput == pytest.approx(b.throughput)


# ----------------------------------------------------------------------
# Round replay (Fig. 7 methodology)
# ----------------------------------------------------------------------
def test_replay_rounds_produces_trajectory(tiny_dtr_workload):
    trajectory = replay_rounds(D2TreeScheme(), tiny_dtr_workload, 4, rounds=5)
    assert len(trajectory.per_round) == 4
    assert trajectory.final_balance > 0


def test_replay_rounds_validation(tiny_dtr_workload):
    with pytest.raises(ValueError):
        replay_rounds(D2TreeScheme(), tiny_dtr_workload, 4, rounds=1)


def test_replay_rounds_adaptive_beats_static(tiny_lmbe_workload):
    adaptive = replay_rounds(D2TreeScheme(), tiny_lmbe_workload, 4, rounds=8)
    static = replay_rounds(StaticSubtreeScheme(), tiny_lmbe_workload, 4, rounds=8)
    assert adaptive.final_balance > static.final_balance


def test_replay_rounds_migrations_counted(tiny_lmbe_workload):
    trajectory = replay_rounds(D2TreeScheme(), tiny_lmbe_workload, 4, rounds=8)
    assert trajectory.migrations >= 0
