"""The committed chaos regression corpus stays green and replayable.

``tests/corpus/*.json`` pins minimized fault schedules that historically
exposed (or nearly exposed) an invariant violation. Every case here must
replay clean through the deterministic simulator — with the full history
audit on — and through the live asyncio transport. A red replay means a
regression of the exact bug class the case was promoted for.
"""

import json
import os

import pytest

from repro.chaos import (
    CorpusCase,
    load_corpus,
    replay_case_live,
    replay_case_sim,
    save_case,
)
from repro.cli import build_parser

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = load_corpus(CORPUS_DIR)


def case_ids(cases):
    return [case.name for case in cases]


def test_corpus_is_committed_and_nonempty():
    assert len(CORPUS) >= 3


def test_corpus_names_match_content_hashes():
    for case in CORPUS:
        assert case.name == f"case-{case.content_hash()[:10]}"


def test_corpus_round_trips_through_json(tmp_path):
    for case in CORPUS:
        path = save_case(case, str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            reloaded = CorpusCase.from_dict(json.load(handle))
        assert reloaded.to_dict() == case.to_dict()


def test_corpus_rejects_unknown_trace_profile():
    with pytest.raises(ValueError, match="unknown trace profile"):
        CorpusCase(
            scheme="d2-tree", trace="nope", nodes=10, scale=1.0, seed=0,
            num_servers=3, num_monitors=1, faults=[],
        )


def test_replay_commands_parse_through_the_cli():
    parser = build_parser()
    for case in CORPUS:
        argv = case.replay_command().split()
        assert argv[0] == "repro"
        args = parser.parse_args(argv[1:])
        assert args.command == "chaos"
        assert args.history
        assert args.seed_base == case.seed and args.seeds == 1
        assert args.fault == case.faults


@pytest.mark.parametrize("case", CORPUS, ids=case_ids(CORPUS))
def test_corpus_replays_green_in_the_simulator(case, tmp_path):
    replayed = replay_case_sim(case, store_dir=str(tmp_path))
    assert replayed.violations == []
    assert replayed.operations + replayed.failed_operations > 0
    assert replayed.history is not None
    assert replayed.history["ok"] == replayed.operations


@pytest.mark.parametrize("case", CORPUS, ids=case_ids(CORPUS))
def test_corpus_replays_green_through_the_live_transport(case, tmp_path):
    report = replay_case_live(case, socket_dir=str(tmp_path))
    assert report.violations == []
    assert report.acked + report.failed + report.indeterminate == (
        report.operations
    )
