"""Tests for namespace mutations (rename/move/remove) and placement repair."""

import pytest

from repro.baselines import (
    AngleCutScheme,
    DropScheme,
    DynamicSubtreeScheme,
    HashScheme,
    StaticSubtreeScheme,
)
from repro.core import D2TreeScheme, NamespaceTree
from repro.repair import move_with_repair, rename_with_repair
from tests.conftest import build_random_tree


def small_tree():
    tree = NamespaceTree()
    tree.add_path("/a/b/c.txt")
    tree.add_path("/a/b/d.txt")
    tree.add_path("/a/e", is_directory=True)
    tree.add_path("/f/g.txt")
    for node in tree:
        tree.record_access(node, 1.0)
    tree.aggregate_popularity()
    return tree


# ----------------------------------------------------------------------
# Tree mutations
# ----------------------------------------------------------------------
def test_rename_rekeys_subtree():
    tree = small_tree()
    b = tree.lookup("/a/b")
    changed = tree.rename(b, "renamed")
    assert changed == 3  # b + two files
    assert tree.lookup("/a/renamed/c.txt") is not None
    assert tree.lookup("/a/b/c.txt") is None
    tree.validate()


def test_rename_validation():
    tree = small_tree()
    with pytest.raises(ValueError):
        tree.rename(tree.root, "x")
    with pytest.raises(ValueError):
        tree.rename(tree.lookup("/a/b"), "bad/name")
    with pytest.raises(ValueError):
        tree.rename(tree.lookup("/a/b"), "")
    with pytest.raises(ValueError):
        tree.rename(tree.lookup("/a/b"), "e")  # sibling collision


def test_move_node_reparents():
    tree = small_tree()
    b = tree.lookup("/a/b")
    f = tree.lookup("/f")
    changed = tree.move_node(b, f)
    assert changed == 3
    assert tree.lookup("/f/b/c.txt") is not None
    assert tree.lookup("/a/b") is None
    assert b.depth == 2
    tree.validate()


def test_move_validation():
    tree = small_tree()
    with pytest.raises(ValueError):
        tree.move_node(tree.root, tree.lookup("/a"))
    with pytest.raises(ValueError):  # into own subtree
        tree.move_node(tree.lookup("/a"), tree.lookup("/a/e"))
    with pytest.raises(ValueError):  # file target
        tree.move_node(tree.lookup("/a/e"), tree.lookup("/f/g.txt"))
    tree.add_path("/f/b", is_directory=True)
    with pytest.raises(ValueError):  # name collision at target
        tree.move_node(tree.lookup("/a/b"), tree.lookup("/f"))


def test_move_updates_popularity_paths():
    tree = small_tree()
    before_a = tree.lookup("/a").popularity
    b = tree.lookup("/a/b")
    b_pop = b.popularity
    tree.move_node(b, tree.lookup("/f"))
    tree.aggregate_popularity()
    assert tree.lookup("/a").popularity == pytest.approx(before_a - b_pop)
    assert tree.lookup("/f").popularity >= b_pop


def test_remove_detaches_subtree():
    tree = small_tree()
    size_before = len(tree)
    b = tree.lookup("/a/b")
    removed = tree.remove(b)
    assert removed == 3
    assert len(tree) == size_before - 3
    assert tree.lookup("/a/b") is None
    assert all(n.path != "/a/b" for n in tree)
    tree.validate()


def test_remove_root_rejected():
    tree = small_tree()
    with pytest.raises(ValueError):
        tree.remove(tree.root)


def test_removed_popularity_leaves_tree():
    tree = small_tree()
    total_before = tree.total_popularity
    b = tree.lookup("/a/b")
    b_pop = b.popularity
    tree.remove(b)
    assert tree.total_popularity == pytest.approx(total_before - b_pop)


def test_node_by_id_raises_for_removed():
    tree = small_tree()
    b = tree.lookup("/a/b")
    tree.remove(b)
    with pytest.raises(KeyError):
        tree.node_by_id(b.node_id)


def test_rename_then_add_same_name():
    tree = small_tree()
    tree.rename(tree.lookup("/a/b"), "old_b")
    fresh = tree.add_path("/a/b/new.txt")
    assert fresh.path == "/a/b/new.txt"
    assert tree.lookup("/a/old_b/c.txt") is not None
    tree.validate()


# ----------------------------------------------------------------------
# Repair costs per scheme
# ----------------------------------------------------------------------
@pytest.fixture
def big_tree():
    return build_random_tree(400, seed=33)


def pick_dir(tree):
    """A depth-1 directory with a decent subtree."""
    candidates = [
        n for n in tree if n.is_directory and n.depth == 1 and n.subtree_size() > 5
    ]
    return max(candidates, key=lambda n: n.subtree_size())


def test_hash_rename_moves_most_of_subtree(big_tree):
    placement = HashScheme().partition(big_tree, 8)
    target = pick_dir(big_tree)
    size = target.subtree_size()
    report = rename_with_repair(placement, big_tree, target, "zz", cut_depth=-1)
    assert report.paths_changed == size
    # Rehashing scatters: with 8 servers ~7/8 of nodes move.
    assert report.metadata_moved > 0.5 * size
    placement.validate_complete(big_tree)


def test_static_rename_of_anchor_moves_subtree(big_tree):
    placement = StaticSubtreeScheme(cut_depth=1).partition(big_tree, 8)
    target = pick_dir(big_tree)
    report = rename_with_repair(placement, big_tree, target, "zz", cut_depth=1)
    # The anchor's hash changed: with high probability the subtree relocates
    # wholesale (possibly to the same server, 1/8 of the time).
    assert report.metadata_moved in (0, target.subtree_size())
    placement.validate_complete(big_tree)


def test_static_rename_below_anchor_free(big_tree):
    placement = StaticSubtreeScheme(cut_depth=1).partition(big_tree, 8)
    deep = next(
        n for n in big_tree if n.depth >= 2 and n.is_directory and n.children
    )
    report = rename_with_repair(placement, big_tree, deep, "zz", cut_depth=1)
    assert report.metadata_moved == 0


def test_dynamic_rename_free(big_tree):
    placement = DynamicSubtreeScheme().partition(big_tree, 8)
    target = pick_dir(big_tree)
    report = rename_with_repair(placement, big_tree, target, "zz")
    assert report.metadata_moved == 0


def test_drop_pathname_rename_rehashes(big_tree):
    placement = DropScheme(key_mode="pathname").partition(big_tree, 8)
    target = pick_dir(big_tree)
    size = target.subtree_size()
    report = rename_with_repair(placement, big_tree, target, "zz")
    assert report.metadata_moved > 0.3 * size
    placement.validate_complete(big_tree)


def test_anglecut_rename_keeps_projection(big_tree):
    placement = AngleCutScheme().partition(big_tree, 8)
    target = pick_dir(big_tree)
    report = rename_with_repair(placement, big_tree, target, "zz")
    # Depth and preorder position are untouched by a same-parent rename.
    assert report.metadata_moved == 0


def test_anglecut_move_reprojects(big_tree):
    placement = AngleCutScheme(num_rings=4).partition(big_tree, 8)
    target = pick_dir(big_tree)
    deep_parent = next(
        n for n in big_tree
        if n.is_directory and n.depth == 3 and target not in n.ancestors(include_self=True)
    )
    report = move_with_repair(placement, big_tree, target, deep_parent)
    # Depth changed by 3 (not a multiple of num_rings): rings change.
    assert report.metadata_moved > 0


def test_d2_rename_moves_nothing(big_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(big_tree, 8)
    target = pick_dir(big_tree)
    report = rename_with_repair(placement, big_tree, target, "zz")
    assert report.metadata_moved == 0
    assert report.entries_updated >= 1
    placement.validate_complete(big_tree)


def test_d2_rename_global_node_updates_replicas(big_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(big_tree, 8)
    gl_child = next(
        n for n in placement.split.global_layer if n.parent is not None
    )
    report = rename_with_repair(placement, big_tree, gl_child, "zz")
    assert report.metadata_moved == 0
    assert report.entries_updated >= len(placement.servers_of(gl_child))


def test_migration_fraction_property():
    from repro.repair import RepairReport

    assert RepairReport(paths_changed=0).migration_fraction == 0.0
    assert RepairReport(paths_changed=10, metadata_moved=5).migration_fraction == 0.5
