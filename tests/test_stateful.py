"""Stateful property test: D2-Tree placement invariants under random ops.

Drives a placement through random sequences of the operations a live
cluster performs — subtree moves, promotions, demotions, popularity shifts,
rebalances, server additions and failures — and checks the structural
invariants after every step:

* every live node is placed (Eq. 4);
* the global layer is connected and replicated consistently;
* every local-layer subtree lives wholly on its owner;
* the local index resolves every local node.
"""

import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.cluster import fail_server
from repro.core import D2TreeScheme
from tests.conftest import build_random_tree


class D2PlacementMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(min_value=0, max_value=2 ** 16))
    def setup(self, seed):
        self.rng = random.Random(seed)
        self.tree = build_random_tree(150, seed=seed % 97)
        self.scheme = D2TreeScheme(
            global_layer_fraction=0.05, demote_threshold=0.05
        )
        self.placement = self.scheme.partition(self.tree, 4)
        self.failed = set()

    def _live_servers(self):
        return [
            s for s in range(self.placement.num_servers) if s not in self.failed
        ]

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule()
    def move_a_subtree(self):
        if not self.placement.subtree_owner:
            return
        root = self.rng.choice(list(self.placement.subtree_owner))
        target = self.rng.choice(self._live_servers())
        self.placement.move_subtree(root, target)

    @rule()
    def promote_a_subtree(self):
        if not self.placement.subtree_owner:
            return
        root = self.rng.choice(list(self.placement.subtree_owner))
        self.placement.promote_subtree(root)

    @rule()
    def demote_a_leaf(self):
        candidates = [
            n
            for n in self.placement.split.global_layer
            if not n.children and n.parent is not None
        ]
        if not candidates:
            return
        node = self.rng.choice(candidates)
        self.placement.demote_global_node(node, self.rng.choice(self._live_servers()))

    @rule(weight=st.floats(min_value=1.0, max_value=300.0))
    def heat_a_node(self, weight):
        node = self.rng.choice(self.tree.nodes)
        self.tree.record_access(node, weight)
        self.tree.aggregate_popularity()

    @rule()
    def rebalance(self):
        self.scheme.rebalance(self.tree, self.placement)

    @rule()
    def add_a_server(self):
        if self.placement.num_servers >= 8:
            return
        self.placement.add_server()

    @rule()
    def fail_a_server(self):
        live = self._live_servers()
        if len(live) <= 2:
            return
        dead = self.rng.choice(live)
        fail_server(self.placement, dead)
        self.failed.add(dead)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def every_node_placed(self):
        self.placement.validate_complete(self.tree)

    @invariant()
    def global_layer_connected(self):
        for node in self.placement.split.global_layer:
            assert node.parent is None or node.parent in self.placement.split.global_layer

    @invariant()
    def global_layer_replicated_consistently(self):
        sets = {
            self.placement.servers_of(node)
            for node in self.placement.split.global_layer
            if node.parent is None
        }
        assert len(sets) == 1  # the root defines the replica set
        for node in self.placement.split.global_layer:
            replicas = self.placement.servers_of(node)
            assert len(replicas) >= 1
            assert not (set(replicas) & self.failed)

    @invariant()
    def subtrees_whole_and_indexed(self):
        for root, owner in self.placement.subtree_owner.items():
            assert owner not in self.failed
            for member in root.descendants(include_self=True):
                assert self.placement.primary_of(member) == owner

    @invariant()
    def local_nodes_resolve(self):
        for node in self.tree:
            if not self.placement.is_global(node):
                root = self.placement.subtree_root_of(node)
                assert root in self.placement.subtree_owner


D2PlacementMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestD2PlacementMachine = D2PlacementMachine.TestCase
