"""Unit tests for repro.core.node."""

import pytest

from repro.core.node import PATH_SEPARATOR, MetadataNode


def test_root_defaults():
    root = MetadataNode(PATH_SEPARATOR)
    assert root.is_root
    assert root.is_leaf
    assert root.depth == 0
    assert root.path == "/"


def test_child_path_composition():
    root = MetadataNode("/")
    home = root.add_child(MetadataNode("home"))
    b = home.add_child(MetadataNode("b"))
    f = b.add_child(MetadataNode("h.jpg", is_directory=False))
    assert home.path == "/home"
    assert b.path == "/home/b"
    assert f.path == "/home/b/h.jpg"


def test_depth_counts_edges():
    root = MetadataNode("/")
    a = root.add_child(MetadataNode("a"))
    b = a.add_child(MetadataNode("b"))
    assert root.depth == 0
    assert a.depth == 1
    assert b.depth == 2


def test_add_child_to_file_rejected():
    f = MetadataNode("x.txt", is_directory=False)
    with pytest.raises(ValueError):
        f.add_child(MetadataNode("y"))


def test_negative_popularity_rejected():
    with pytest.raises(ValueError):
        MetadataNode("a", individual_popularity=-1.0)


def test_negative_update_cost_rejected():
    with pytest.raises(ValueError):
        MetadataNode("a", update_cost=-0.5)


def test_child_by_name():
    root = MetadataNode("/")
    a = root.add_child(MetadataNode("a"))
    assert root.child_by_name("a") is a
    assert root.child_by_name("missing") is None


def test_ancestors_root_first():
    root = MetadataNode("/")
    a = root.add_child(MetadataNode("a"))
    b = a.add_child(MetadataNode("b"))
    assert b.ancestors() == [root, a]
    assert b.ancestors(include_self=True) == [root, a, b]


def test_ancestors_of_root_empty():
    root = MetadataNode("/")
    assert root.ancestors() == []
    assert root.ancestors(include_self=True) == [root]


def test_descendants_covers_subtree():
    root = MetadataNode("/")
    a = root.add_child(MetadataNode("a"))
    b = root.add_child(MetadataNode("b"))
    c = a.add_child(MetadataNode("c", is_directory=False))
    got = set(root.descendants())
    assert got == {a, b, c}


def test_descendants_include_self():
    root = MetadataNode("/")
    a = root.add_child(MetadataNode("a"))
    assert set(root.descendants(include_self=True)) == {root, a}


def test_subtree_size():
    root = MetadataNode("/")
    a = root.add_child(MetadataNode("a"))
    a.add_child(MetadataNode("c", is_directory=False))
    assert root.subtree_size() == 3
    assert a.subtree_size() == 2


def test_leaf_detection_with_children():
    root = MetadataNode("/")
    root.add_child(MetadataNode("a"))
    assert not root.is_leaf


def test_path_cache_invalidated_on_reparent():
    root = MetadataNode("/")
    a = root.add_child(MetadataNode("a"))
    child = MetadataNode("x")
    _ = child.path  # prime the cache while detached
    a.add_child(child)
    assert child.path == "/a/x"


def test_initial_popularity_equals_individual():
    node = MetadataNode("a", individual_popularity=4.5)
    assert node.popularity == 4.5
    assert node.individual_popularity == 4.5
