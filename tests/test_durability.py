"""Durability integration: kill9 faults, recovery replay, chaos invariant 5."""

import dataclasses
import json

import pytest

from repro.chaos import (
    CHAOS_HEARTBEAT_INTERVAL,
    CHAOS_HEARTBEAT_TIMEOUT,
    CHAOS_LEASE_TIMEOUT,
    generate_plan,
    run_case,
)
from repro.cli import main
from repro.core import D2TreeScheme
from repro.simulation import ClusterSimulator, FaultPlan, SimulationConfig
from repro.simulation.faults import FaultKind
from repro.traces import DatasetProfile, TraceGenerator


@pytest.fixture(scope="module")
def workload():
    full = TraceGenerator(
        DatasetProfile.dtr(num_nodes=800, scale=5e-5), num_clients=20
    ).generate()
    return dataclasses.replace(full, trace=full.trace.slice(0, 500))


def durable_config(seed, plan, store, store_dir=None):
    return SimulationConfig(
        seed=seed,
        fault_plan=plan,
        num_monitors=3,
        heartbeat_interval=CHAOS_HEARTBEAT_INTERVAL,
        heartbeat_timeout=CHAOS_HEARTBEAT_TIMEOUT,
        monitor_lease_timeout=CHAOS_LEASE_TIMEOUT,
        store=store,
        store_dir=store_dir,
    )


def run_sim(workload, plan, store, seed=5, store_dir=None):
    sim = ClusterSimulator(
        D2TreeScheme(), workload, 5, durable_config(seed, plan, store, store_dir)
    )
    try:
        result = sim.run()
        return sim, result
    finally:
        sim.close()


# ----------------------------------------------------------------------
# Fault plumbing
# ----------------------------------------------------------------------
def test_new_fault_kinds_parse_and_round_trip():
    specs = ["kill9:1@ops=100", "torn_write:2@ops=150", "corrupt_record:0@t=3"]
    plan = FaultPlan.parse(specs)
    kinds = [event.kind for event in plan]
    assert kinds == [
        FaultKind.KILL9, FaultKind.TORN_WRITE, FaultKind.CORRUPT_RECORD,
    ]
    assert plan.to_specs() == specs


def test_generated_plans_gate_durability_kinds():
    kill_kinds = {"kill9", "torn_write", "corrupt_record"}
    plain = {
        event.kind.value
        for seed in range(20)
        for event in generate_plan(seed, 2000, 6, 3)
    }
    assert not plain & kill_kinds  # existing seeds are byte-stable
    durable = {
        event.kind.value
        for seed in range(20)
        for event in generate_plan(seed, 2000, 6, 3, durability=True)
    }
    assert durable & kill_kinds


# ----------------------------------------------------------------------
# kill9 end to end: volatile state wiped, durable state replayed
# ----------------------------------------------------------------------
def test_kill9_recovery_replays_acks_and_fence(workload):
    plan = FaultPlan.parse(["kill9:1@ops=200", "recover:1@ops=400"])
    sim, result = run_sim(workload, plan, store="wal")
    assert result.availability.crashes == 1
    assert result.availability.rejoins == 1
    d = result.durability
    assert d["store"] == "wal"
    assert d["kill9_crashes"] == 1
    assert d["recoveries"] >= 1
    assert d["replayed_records"] > 0
    assert d["violations"] == []
    # The rejoined server carries a fence again (recovery restored it and
    # the rejoin directive ratcheted it forward, never backward).
    assert sim.servers[1].fence_epoch >= 1
    assert sim.servers[1].lost_volatile is False


def test_kill9_without_durable_store_still_degrades(workload):
    # The memory store can't replay anything; the cluster must still
    # rehome the dead server's subtrees and finish the trace.
    plan = FaultPlan.parse(["kill9:1@ops=200", "recover:1@ops=400"])
    sim, result = run_sim(workload, plan, store="memory")
    assert result.durability is None
    assert result.availability.crashes == 1
    assert result.failed_operations == 0


@pytest.mark.parametrize("store", ["wal", "sqlite"])
@pytest.mark.parametrize("fault", ["torn_write", "corrupt_record"])
def test_tail_damage_detected_and_truncated(workload, store, fault, tmp_path):
    plan = FaultPlan.parse([f"{fault}:1@ops=250", "recover:1@ops=450"])
    sim, result = run_sim(
        workload, plan, store=store, store_dir=str(tmp_path)
    )
    d = result.durability
    key = "torn_writes" if fault == "torn_write" else "corrupt_records"
    assert d[key] == 1
    assert d["truncations"] >= 1
    assert d["dropped"] > 0
    # The acceptance bar: damage detected + truncated, zero acked ops lost.
    assert d["violations"] == []


def test_damage_on_already_dead_server_is_repaired_on_rejoin(workload):
    # crash (volatile state intact) then torn_write on the same server:
    # the rejoin must notice the log damage even though kill9 never fired.
    plan = FaultPlan.parse(
        ["crash:1@ops=150", "torn_write:1@ops=250", "recover:1@ops=450"]
    )
    sim, result = run_sim(workload, plan, store="wal")
    d = result.durability
    assert d["torn_writes"] == 1
    assert d["truncations"] >= 1
    assert d["violations"] == []


# ----------------------------------------------------------------------
# Chaos invariant 5
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", ["wal", "sqlite"])
def test_chaos_case_with_durable_store_is_clean(workload, store, tmp_path):
    case = run_case(
        "d2-tree", workload, 5, seed=11, store=store,
        store_dir=str(tmp_path / store),
    )
    assert case.violations == []
    assert case.store == store
    assert case.durability is not None
    assert case.durability["violations"] == []
    payload = case.to_dict()
    assert payload["store"] == store
    assert payload["durability"]["store"] == store


def test_chaos_case_memory_store_omits_durability(workload):
    case = run_case("d2-tree", workload, 5, seed=3)
    assert case.violations == []
    assert case.durability is None
    payload = case.to_dict()
    assert "durability" not in payload
    assert "store" not in payload


def test_explicit_kill9_plan_passes_all_invariants(workload):
    # The acceptance scenario: kill9 + torn_write against a file-backed
    # WAL, every server recovered, all five invariants clean.
    plan = FaultPlan.parse([
        "kill9:1@ops=120",
        "torn_write:2@ops=200",
        "recover:1@ops=320",
        "recover:2@ops=420",
    ])
    case = run_case("d2-tree", workload, 5, seed=11, plan=plan, store="wal")
    assert case.violations == []
    assert case.durability["kill9_crashes"] >= 1
    assert case.durability["torn_writes"] == 1


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_simulate_cli_store_flag_emits_durability(tmp_path, capsys):
    code, out = run_cli(
        capsys, "simulate", "--trace", "dtr", "--nodes", "600",
        "--scale", "1e-5", "--servers", "4", "--scheme", "d2-tree",
        "--store", "wal", "--store-dir", str(tmp_path / "wal"),
        "--fault", "kill9:1@ops=100", "--fault", "recover:1@ops=250",
        "--heartbeat-interval", "0.01", "--heartbeat-timeout", "0.03",
        "--monitors", "3", "--json",
    )
    assert code == 0
    payload = json.loads(out)
    durability = payload[0]["durability"]
    assert durability["store"] == "wal"
    assert durability["kill9_crashes"] == 1
    assert durability["violations"] == []


def test_simulate_cli_default_store_omits_durability(capsys):
    code, out = run_cli(
        capsys, "simulate", "--trace", "dtr", "--nodes", "600",
        "--scale", "1e-5", "--servers", "4", "--scheme", "d2-tree",
        "--json",
    )
    assert code == 0
    assert "durability" not in json.loads(out)[0]


def test_chaos_cli_durable_smoke(tmp_path, capsys):
    code, out = run_cli(
        capsys, "chaos", "--seeds", "1", "--ops", "400", "--nodes", "800",
        "--scale", "5e-5", "--servers", "5", "--store", "sqlite",
        "--store-dir", str(tmp_path),
    )
    assert code == 0
    assert "1/1 seeds clean" in out


def test_bench_cli_recovery_axis(tmp_path, capsys):
    out_file = tmp_path / "BENCH_recovery.json"
    code, out = run_cli(
        capsys, "bench", "--axis", "recovery", "--log-lengths", "300",
        "--repeats", "1", "--out", str(out_file),
    )
    assert code == 0
    report = json.loads(out_file.read_text())
    assert report["benchmark"] == "wal_recovery"
    points = report["points"]
    assert {p["backend"] for p in points} == {"wal", "sqlite"}
    for point in points:
        assert point["log_records"] == 300
        assert point["recover_seconds"] > 0
        assert point["recovered_acks"] > 0
