"""Chaos harness: schedule generation, invariants, end-to-end fencing."""

import dataclasses

import pytest

from repro.chaos import (
    CHAOS_HEARTBEAT_INTERVAL,
    CHAOS_HEARTBEAT_TIMEOUT,
    CHAOS_LEASE_TIMEOUT,
    _check_invariants,
    _quiesce,
    generate_plan,
    run_case,
    run_chaos,
)
from repro.core import D2TreeScheme
from repro.placement import DEAD_CAPACITY
from repro.simulation import ClusterSimulator, FaultKind, FaultPlan, SimulationConfig
from repro.simulation.faults import _DEGRADING_KINDS
from repro.traces import DatasetProfile, TraceGenerator


@pytest.fixture(scope="module")
def workload():
    full = TraceGenerator(
        DatasetProfile.lmbe(num_nodes=900, scale=5e-5), num_clients=20
    ).generate()
    return dataclasses.replace(full, trace=full.trace.slice(0, 400))


def chaos_config(seed, plan, monitors=3):
    return SimulationConfig(
        seed=seed,
        fault_plan=plan,
        num_monitors=monitors,
        heartbeat_interval=CHAOS_HEARTBEAT_INTERVAL,
        heartbeat_timeout=CHAOS_HEARTBEAT_TIMEOUT,
        monitor_lease_timeout=CHAOS_LEASE_TIMEOUT,
    )


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------
def test_generate_plan_is_deterministic_and_round_trips():
    a = generate_plan(7, 2000, 6, 3)
    b = generate_plan(7, 2000, 6, 3)
    assert a.to_specs() == b.to_specs()
    assert a.to_specs() != generate_plan(8, 2000, 6, 3).to_specs()
    # Every event survives a parse/to_spec round trip (the replay contract).
    assert FaultPlan.parse(a.to_specs()).to_specs() == a.to_specs()


@pytest.mark.parametrize("seed", range(12))
def test_generate_plan_schedules_are_closed(seed):
    # The generator appends events in (degradation, recovery) pairs.
    plan = generate_plan(seed, 2000, 6, 3)
    events = list(plan)
    assert 6 <= len(events) <= 12 and len(events) % 2 == 0  # 3-6 pairs
    for opener, closer in zip(events[::2], events[1::2]):
        assert opener.at_ops < closer.at_ops
        if opener.kind is FaultKind.PARTITION:
            assert closer.kind is FaultKind.HEAL
            assert closer.partition_name == opener.partition_name
        elif opener.kind is FaultKind.MONITOR_CRASH:
            assert closer.kind is FaultKind.MONITOR_RECOVER
            assert closer.server == opener.server
        else:
            assert opener.kind in _DEGRADING_KINDS
            assert closer.kind is FaultKind.RECOVER
            assert closer.server == opener.server
    plan.validate(6, num_monitors=3)


@pytest.mark.parametrize("seed", range(20))
def test_generate_plan_caps_concurrent_crashes(seed):
    num_servers = 5
    plan = generate_plan(seed, 2000, num_servers, 3)
    events = list(plan)
    windows = [
        (opener.at_ops, closer.at_ops)
        for opener, closer in zip(events[::2], events[1::2])
        if opener.kind is FaultKind.CRASH
    ]
    # At every window start, the concurrently-down count stays below a
    # majority, so re-homing always has somewhere to go.
    for lo, _hi in windows:
        concurrent = sum(1 for l, h in windows if l <= lo < h)
        assert concurrent <= (num_servers - 1) // 2


def test_generate_plan_rejects_degenerate_clusters():
    with pytest.raises(ValueError):
        generate_plan(0, 2000, 2, 3)
    with pytest.raises(ValueError):
        generate_plan(0, 10, 6, 3)


# ----------------------------------------------------------------------
# Invariant checker
# ----------------------------------------------------------------------
def test_invariants_clean_on_fault_free_run(workload):
    sim = ClusterSimulator(
        D2TreeScheme(), workload, 4, chaos_config(3, FaultPlan())
    )
    result = sim.run()
    _quiesce(sim, result.makespan)
    assert _check_invariants(sim, result) == []


def test_invariants_flag_injected_corruption(workload):
    sim = ClusterSimulator(
        D2TreeScheme(), workload, 4, chaos_config(3, FaultPlan())
    )
    result = sim.run()
    _quiesce(sim, result.makespan)
    # Dead owner: sentinel a server that still owns metadata.
    sim.placement.capacities[0] = DEAD_CAPACITY
    # Fence ahead of the group epoch (the split-brain smell).
    sim.servers[1].fence_epoch = sim.monitor.epoch + 5
    # Accounting hole: an issued op that neither completed nor failed.
    sim.ops_issued += 1
    violations = _check_invariants(sim, result)
    assert any(v.startswith("ownership:") for v in violations)
    assert any(v.startswith("epochs:") for v in violations)
    assert any(v.startswith("accounting:") for v in violations)


# ----------------------------------------------------------------------
# End-to-end cases
# ----------------------------------------------------------------------
def test_run_case_clean_and_reproducible(workload):
    case = run_case("d2-tree", workload, 4, seed=5, num_monitors=3)
    assert case.ok and case.violations == []
    assert case.operations + case.failed_operations == len(workload.trace)
    assert case.specs == generate_plan(5, len(workload.trace), 4, 3).to_specs()
    again = run_case("d2-tree", workload, 4, seed=5, num_monitors=3)
    assert case.to_dict() == again.to_dict()
    assert case.replay_args()[::2] == ["--fault"] * len(case.specs)


def test_run_chaos_aggregates_cases(workload):
    report = run_chaos("d2-tree", workload, 4, seeds=range(2), num_monitors=3)
    assert len(report.cases) == 2
    assert report.ok == all(c.ok for c in report.cases)
    payload = report.to_dict()
    assert payload["seeds"] == 2 and len(payload["cases"]) == 2


def test_explicit_plan_overrides_generation(workload):
    plan = FaultPlan.parse(["crash:1@ops=50", "recover:1@ops=200"])
    case = run_case("d2-tree", workload, 4, seed=1, plan=plan)
    assert case.specs == plan.to_specs()
    assert case.ok


# ----------------------------------------------------------------------
# Epoch fencing end to end: a crash-era assignment must not be
# resurrected when the server rejoins under a newer leadership epoch.
# ----------------------------------------------------------------------
def test_rejoin_after_failover_does_not_resurrect_pre_crash_ownership(workload):
    plan = FaultPlan.parse([
        "crash:1@ops=60",          # server 1 dies mid-run; epoch-1 re-home
        "monitor_crash:0@ops=80",  # leader dies too -> lease failover
        "recover:1@ops=250",       # server rejoins under the new epoch
        "monitor_recover:0@ops=300",
    ])
    sim = ClusterSimulator(
        D2TreeScheme(), workload, 4, chaos_config(2, plan, monitors=3)
    )
    result = sim.run()
    _quiesce(sim, result.makespan)
    assert sim.monitor.epoch >= 2 and sim.monitor.failovers >= 1
    # The rejoin was committed at the post-failover epoch and the journal
    # never went backwards.
    epochs = sim.monitor.journal.server_epochs(1)
    assert epochs and epochs == sorted(epochs)
    assert epochs[-1] == sim.monitor.epoch
    # The rejoined server applied the new-epoch directive: its fence caught
    # up and nothing it owns predates the failover.
    assert sim.servers[1].fence_epoch == sim.monitor.epoch
    assert _check_invariants(sim, result) == []
