"""Streaming trace generation: byte-identity with the materialized path.

The contract under test (ISSUE: columnar engine): ``TraceGenerator.stream()``
/ ``stream_workload`` must yield record-for-record exactly what
``generate()`` / ``load_workload`` materializes — same tree, same CREATE
conversions, same one-pass statistics — while holding O(1) records in
memory, so million-op traces replay in fixed space.
"""

import dataclasses
import tracemalloc

import pytest

from repro.traces import DatasetProfile, StreamingTrace, TraceGenerator
from repro.traces.generator import load_workload, stream_workload


def _profiles():
    base = DatasetProfile.dtr(num_nodes=900, scale=4e-5)
    return [
        ("plain", dataclasses.replace(base, seed=5)),
        (
            "creates",
            dataclasses.replace(base, seed=6, create_fraction=0.1),
        ),
        (
            "lmbe",
            dataclasses.replace(
                DatasetProfile.lmbe(num_nodes=700, scale=2e-5), seed=7
            ),
        ),
    ]


@pytest.mark.parametrize(
    "profile", [p for _, p in _profiles()], ids=[n for n, _ in _profiles()]
)
def test_stream_matches_generate(profile):
    """Streamed records are byte-identical to the materialized trace."""
    materialized = TraceGenerator(profile, num_clients=16).generate()
    streamed = TraceGenerator(profile, num_clients=16).stream()
    assert isinstance(streamed.trace, StreamingTrace)
    assert list(streamed.trace) == materialized.trace.records
    assert streamed.late_created_paths == materialized.late_created_paths
    assert [n.path for n in streamed.hot_nodes] == [
        n.path for n in materialized.hot_nodes
    ]
    # Both generators apply the same popularity backfill to their trees.
    mat_nodes = {n.path: n for n in materialized.tree}
    for node in streamed.tree:
        twin = mat_nodes.pop(node.path)
        assert node.individual_popularity == twin.individual_popularity
        assert node.update_cost == twin.update_cost
    assert not mat_nodes


def test_stream_is_restartable():
    """A StreamingTrace re-generates identical records on every iteration."""
    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=500, scale=2e-5), seed=9,
        create_fraction=0.08,
    )
    workload = TraceGenerator(profile, num_clients=8).stream()
    assert list(workload.trace) == list(workload.trace)


def test_stream_len_and_one_pass_stats():
    """len() and the TraceOps one-pass statistics match the materialized
    trace (the stats contract: one sweep, no record list)."""
    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=500, scale=2e-5), seed=10
    )
    streamed = TraceGenerator(profile, num_clients=8).stream()
    materialized = TraceGenerator(profile, num_clients=8).generate()
    assert len(streamed.trace) == profile.num_operations
    assert len(streamed.trace) == len(materialized.trace)
    assert streamed.trace.duration == materialized.trace.duration
    assert (
        streamed.trace.operation_breakdown()
        == materialized.trace.operation_breakdown()
    )
    assert streamed.trace.paths() == materialized.trace.paths()
    assert streamed.trace.max_depth() == materialized.trace.max_depth()


def test_streaming_trace_records_raises():
    """The record-list API is explicitly unavailable on streaming traces."""
    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=400, scale=2e-5), seed=11
    )
    workload = TraceGenerator(profile, num_clients=8).stream()
    with pytest.raises(TypeError):
        workload.trace.records
    materialized = workload.trace.materialize()
    assert materialized.records == list(workload.trace)


def test_stream_workload_cached():
    """stream_workload memoises per profile, like load_workload."""
    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=400, scale=2e-5), seed=12
    )
    first = stream_workload(profile)
    assert stream_workload(profile) is first
    assert list(first.trace) == load_workload(profile).trace.records


@pytest.mark.slow
def test_stream_million_ops_bounded_memory():
    """1M-op smoke: a streamed trace iterates in fixed memory.

    The materialized equivalent holds ~1M TraceRecord objects (hundreds of
    MB); the streaming iterator must stay within a few MB above its
    baseline no matter the trace length.
    """
    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=4000, scale=1.0),
        seed=3,
        num_operations=1_000_000,
    )
    workload = TraceGenerator(profile, num_clients=20).stream()
    tracemalloc.start()
    base = tracemalloc.get_traced_memory()[0]
    count = sum(1 for _ in workload.trace)
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    assert count == 1_000_000
    assert peak - base < 8 * 1024 * 1024  # fixed memory: < 8 MB above base
