"""Property-based tests (hypothesis) for core invariants."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import EmpiricalCDF, dkw_confidence, dkw_epsilon
from repro.core import (
    DecayingCounter,
    NamespaceTree,
    greedy_allocate,
    mirror_division,
    split_top_k,
)
from repro.metrics import balance_degree, ideal_load_factor, load_variance


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
popularities = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=60
)
capacities = st.lists(
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False), min_size=1, max_size=8
)


@st.composite
def random_trees(draw):
    """Random namespace trees with popularity, up to ~80 nodes."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    size = draw(st.integers(min_value=1, max_value=80))
    rng = random.Random(seed)
    tree = NamespaceTree()
    nodes = [tree.root]
    for i in range(size):
        parent = rng.choice(nodes)
        if not parent.is_directory:
            parent = parent.parent
        child = tree.add_child(
            parent, f"n{i}", is_directory=rng.random() < 0.4,
            individual_popularity=rng.random() * 10,
            update_cost=rng.random(),
        )
        nodes.append(child)
    tree.aggregate_popularity()
    return tree


# ----------------------------------------------------------------------
# Mirror division invariants
# ----------------------------------------------------------------------
@given(popularities, capacities)
@settings(max_examples=60, deadline=None)
def test_mirror_division_conserves_load(pops, caps):
    result = mirror_division(pops, caps)
    assert len(result.assignment) == len(pops)
    assert all(0 <= s < len(caps) for s in result.assignment)
    assert sum(result.loads) == pytest.approx(sum(pops), rel=1e-9, abs=1e-9)


@given(popularities, capacities)
@settings(max_examples=60, deadline=None)
def test_mirror_division_load_consistency(pops, caps):
    result = mirror_division(pops, caps)
    manual = [0.0] * len(caps)
    for pop, server in zip(pops, result.assignment):
        manual[server] += pop
    for a, b in zip(result.loads, manual):
        assert a == pytest.approx(b)


@given(popularities, capacities)
@settings(max_examples=60, deadline=None)
def test_greedy_never_worse_than_single_server(pops, caps):
    result = greedy_allocate(pops, caps)
    assert max(result.loads) <= sum(pops) + 1e-9


# ----------------------------------------------------------------------
# Tree splitting invariants
# ----------------------------------------------------------------------
@given(random_trees(), st.integers(min_value=1, max_value=50))
@settings(max_examples=50, deadline=None)
def test_split_partitions_tree(tree, k):
    result = split_top_k(tree, k)
    local = set()
    for root in result.subtree_roots:
        local.add(root)
        local.update(root.descendants())
    # GL and LL partition the node set.
    assert result.global_layer | local == set(tree.nodes)
    assert not (result.global_layer & local)


@given(random_trees(), st.integers(min_value=1, max_value=50))
@settings(max_examples=50, deadline=None)
def test_split_global_layer_connected_and_sized(tree, k):
    result = split_top_k(tree, k)
    assert len(result.global_layer) == min(k, len(tree))
    for node in result.global_layer:
        assert node.parent is None or node.parent in result.global_layer


@given(random_trees(), st.integers(min_value=1, max_value=50))
@settings(max_examples=50, deadline=None)
def test_split_local_popularity_nonnegative(tree, k):
    result = split_top_k(tree, k)
    assert result.local_popularity >= -1e-6
    assert result.update_cost >= 0


# ----------------------------------------------------------------------
# Popularity aggregation invariants
# ----------------------------------------------------------------------
@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_popularity_parent_at_least_child(tree):
    for node in tree:
        if node.parent is not None:
            assert node.parent.popularity >= node.popularity - 1e-9


@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_root_popularity_is_total(tree):
    total = sum(n.individual_popularity for n in tree)
    assert tree.root.popularity == pytest.approx(total)


# ----------------------------------------------------------------------
# Balance metric invariants
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=2, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_balance_scale_invariance(loads):
    caps = [1.0] * len(loads)
    base = load_variance(loads, caps)
    scaled = load_variance([load * 2 for load in loads], caps)
    assert scaled == pytest.approx(base * 4, rel=1e-6, abs=1e-9)


@given(
    st.lists(st.floats(min_value=0.1, max_value=100, allow_nan=False), min_size=2, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_balance_of_uniform_loads_infinite(loads):
    uniform = [5.0] * len(loads)
    caps = [1.0] * len(loads)
    assert balance_degree(uniform, caps) == float("inf")
    assert ideal_load_factor(uniform, caps) == pytest.approx(5.0)


# ----------------------------------------------------------------------
# Empirical CDF invariants
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_cdf_bounds_and_monotonicity(samples):
    cdf = EmpiricalCDF(samples)
    points = sorted(samples)
    values = [cdf(p) for p in points]
    assert values == sorted(values)
    assert values[-1] == 1.0
    assert all(0.0 <= v <= 1.0 for v in values)


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=100),
       st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=60, deadline=None)
def test_cdf_quantile_consistency(samples, q):
    cdf = EmpiricalCDF(samples)
    value = cdf.quantile(q)
    assert cdf(value) >= q - 1e-9


@given(st.integers(min_value=1, max_value=10_000), st.floats(min_value=0.5, max_value=0.999))
@settings(max_examples=60, deadline=None)
def test_dkw_roundtrip(k, confidence):
    eps = dkw_epsilon(k, confidence)
    assert eps > 0
    assert dkw_confidence(k, eps) == pytest.approx(confidence, abs=1e-9)


# ----------------------------------------------------------------------
# Decaying counter invariants
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    ),
    st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=60, deadline=None)
def test_counter_never_negative_and_bounded(events, decay):
    counter = DecayingCounter(decay_rate=decay)
    total = 0.0
    for delta, weight in sorted(events):
        counter.record(delta, weight)
        total += weight
    value = counter.value()
    assert 0.0 <= value <= total + 1e-9


@given(st.floats(min_value=0.01, max_value=5.0), st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_counter_matches_closed_form(decay, gap):
    counter = DecayingCounter(decay_rate=decay)
    counter.record(0.0, weight=1.0)
    assert counter.value(now=gap) == pytest.approx(math.exp(-decay * gap))
