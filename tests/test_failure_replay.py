"""Mid-replay failure injection: crashes during a live trace replay."""

import pytest

from repro.baselines import DropScheme, StaticSubtreeScheme
from repro.core import D2TreeScheme
from repro.simulation import SimulationConfig
from repro.simulation.runner import ClusterSimulator
from repro.traces import DatasetProfile, TraceGenerator


@pytest.fixture(scope="module")
def workload():
    return TraceGenerator(
        DatasetProfile.lmbe(num_nodes=1500, scale=6e-5), num_clients=20
    ).generate()


def config(**kw):
    kw.setdefault("num_clients", 20)
    kw.setdefault("adjust_every_ops", 500)
    return SimulationConfig(**kw)


def test_replay_survives_single_failure(workload):
    cfg = config(failures=((1000, 2),))
    sim = ClusterSimulator(D2TreeScheme(), workload, 4, cfg)
    result = sim.run()
    assert result.operations == len(workload.trace)
    assert not sim.servers[2].alive
    # Everything the dead server held moved elsewhere.
    for node in workload.tree:
        assert 2 not in sim.placement.servers_of(node)


def test_dead_server_stops_serving(workload):
    cfg = config(failures=((800, 1),))
    sim = ClusterSimulator(D2TreeScheme(), workload, 4, cfg)
    sim.run()
    served_before_crash = sim.servers[1].served
    # Run again without the failure: the same server serves strictly more.
    healthy = ClusterSimulator(D2TreeScheme(), workload, 4, config()).run()
    assert served_before_crash < healthy.server_visits[1]


def test_failure_hurts_throughput(workload):
    healthy = ClusterSimulator(D2TreeScheme(), workload, 4, config()).run()
    degraded = ClusterSimulator(
        D2TreeScheme(), workload, 4, config(failures=((500, 0),))
    ).run()
    # Losing 1 of 4 servers early costs throughput (failover + capacity).
    assert degraded.throughput < healthy.throughput


def test_multiple_failures(workload):
    cfg = config(failures=((600, 0), (1600, 3)))
    sim = ClusterSimulator(D2TreeScheme(), workload, 5, cfg)
    result = sim.run()
    assert result.operations == len(workload.trace)
    assert not sim.servers[0].alive and not sim.servers[3].alive
    live = [s.server_id for s in sim.servers if s.alive]
    for node in workload.tree:
        assert set(sim.placement.servers_of(node)) <= set(live)


@pytest.mark.parametrize("scheme_cls", [StaticSubtreeScheme, DropScheme])
def test_baseline_schemes_survive_failure(workload, scheme_cls):
    cfg = config(failures=((1000, 1),))
    sim = ClusterSimulator(scheme_cls(), workload, 4, cfg)
    result = sim.run()
    assert result.operations == len(workload.trace)
    for node in workload.tree:
        assert 1 not in sim.placement.servers_of(node)


def test_failure_then_rebalance_spreads_load(workload):
    cfg = config(failures=((500, 2),), adjust_every_ops=400)
    sim = ClusterSimulator(D2TreeScheme(), workload, 4, cfg)
    sim.run()
    loads = sim.placement.local_loads()
    assert loads[2] == 0.0
    live_loads = [loads[k] for k in range(4) if k != 2]
    assert min(live_loads) > 0.0
