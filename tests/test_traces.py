"""Tests for the trace model and dataset profiles."""

import pytest

from repro.traces import (
    DEFAULT_SCALE,
    PAPER_RECORD_COUNTS,
    DatasetProfile,
    OpType,
    Trace,
    TraceRecord,
    all_profiles,
)


def make_trace(n=10):
    records = [
        TraceRecord(timestamp=float(i), op=list(OpType)[i % 3], path=f"/f{i % 4}", client_id=i % 2)
        for i in range(n)
    ]
    return Trace(name="t", records=records)


# ----------------------------------------------------------------------
# OpType / TraceRecord / Trace
# ----------------------------------------------------------------------
def test_optype_query_classification():
    assert OpType.READ.is_query
    assert OpType.WRITE.is_query
    assert not OpType.UPDATE.is_query


def test_trace_len_and_iter():
    trace = make_trace(7)
    assert len(trace) == 7
    assert len(list(trace)) == 7


def test_trace_duration():
    trace = make_trace(5)
    assert trace.duration == pytest.approx(4.0)
    assert Trace(name="empty").duration == 0.0


def test_operation_breakdown_sums_to_one():
    trace = make_trace(30)
    breakdown = trace.operation_breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)


def test_operation_breakdown_empty_trace():
    breakdown = Trace(name="empty").operation_breakdown()
    assert all(v == 0.0 for v in breakdown.values())


def test_max_depth():
    records = [TraceRecord(0.0, OpType.READ, "/a/b/c.txt")]
    assert Trace(name="t", records=records).max_depth() == 3


def test_paths_first_appearance_order():
    trace = make_trace(8)
    assert trace.paths() == ["/f0", "/f1", "/f2", "/f3"]


def test_slice():
    trace = make_trace(10)
    piece = trace.slice(2, 5)
    assert len(piece) == 3
    assert piece.records[0].timestamp == 2.0


def test_rounds_partition_all_records():
    trace = make_trace(10)
    rounds = trace.rounds(3)
    assert sum(len(r) for r in rounds) == 10
    assert len(rounds) == 3


def test_rounds_validation():
    with pytest.raises(ValueError):
        make_trace(5).rounds(0)


# ----------------------------------------------------------------------
# DatasetProfile
# ----------------------------------------------------------------------
def test_three_paper_profiles():
    dtr, lmbe, ra = all_profiles(num_nodes=2000, scale=1e-5)
    assert (dtr.name, lmbe.name, ra.name) == ("DTR", "LMBE", "RA")
    assert (dtr.max_depth, lmbe.max_depth, ra.max_depth) == (49, 9, 13)


def test_profile_fractions_sum_to_one():
    for profile in all_profiles(2000, 1e-5):
        total = profile.read_fraction + profile.write_fraction + profile.update_fraction
        assert total == pytest.approx(1.0, abs=1e-6)


def test_profile_record_counts_scale():
    dtr = DatasetProfile.dtr(num_nodes=2000, scale=1e-4)
    assert dtr.num_operations == round(PAPER_RECORD_COUNTS["DTR"] * 1e-4)


def test_profile_min_operations_floor():
    dtr = DatasetProfile.dtr(num_nodes=2000, scale=1e-9)
    assert dtr.num_operations == 1000


def test_profile_validation_fraction_sum():
    with pytest.raises(ValueError):
        DatasetProfile(
            name="bad", description="", num_nodes=100, max_depth=5,
            mean_branching=2, num_operations=10, read_fraction=0.5,
            write_fraction=0.2, update_fraction=0.2, hot_fraction=0.01,
            hot_access_fraction=0.5, zipf_exponent=1.0, seed=1,
        )


def test_profile_validation_depth_room():
    with pytest.raises(ValueError):
        DatasetProfile(
            name="bad", description="", num_nodes=5, max_depth=10,
            mean_branching=2, num_operations=10, read_fraction=0.5,
            write_fraction=0.3, update_fraction=0.2, hot_fraction=0.01,
            hot_access_fraction=0.5, zipf_exponent=1.0, seed=1,
        )


def test_profile_scaled_copy():
    dtr = DatasetProfile.dtr(num_nodes=2000, scale=1e-5)
    small = dtr.scaled(num_nodes=500, num_operations=100)
    assert small.num_nodes == 500
    assert small.num_operations == 100
    assert small.name == dtr.name
    assert dtr.num_nodes == 2000  # original untouched (frozen)


def test_profiles_hashable_for_caching():
    a = DatasetProfile.dtr(2000, 1e-5)
    b = DatasetProfile.dtr(2000, 1e-5)
    assert a == b
    assert hash(a) == hash(b)


def test_default_scale_value():
    assert DEFAULT_SCALE == pytest.approx(1e-3)
