"""Shared fixtures: small deterministic trees and workloads."""

import random

import pytest

from repro.core import NamespaceTree
from repro.traces import DatasetProfile, TraceGenerator


def build_sample_tree() -> NamespaceTree:
    """A hand-written tree mirroring the paper's Fig. 2 example."""
    tree = NamespaceTree()
    tree.add_path("/home", is_directory=True)
    tree.add_path("/home/a", is_directory=True)
    tree.add_path("/home/b", is_directory=True)
    tree.add_path("/home/a/c.txt")
    tree.add_path("/home/b/g.pdf")
    tree.add_path("/home/b/h.jpg")
    tree.add_path("/var", is_directory=True)
    tree.add_path("/var/d", is_directory=True)
    tree.add_path("/var/e", is_directory=True)
    tree.add_path("/var/e/j.doc")
    tree.add_path("/usr", is_directory=True)
    tree.add_path("/usr/f", is_directory=True)
    for i, path in enumerate(
        ["/home/a/c.txt", "/home/b/g.pdf", "/home/b/h.jpg", "/var/e/j.doc"]
    ):
        tree.record_access(tree.lookup(path), weight=10.0 * (i + 1))
    tree.record_access(tree.lookup("/home"), weight=5.0)
    for node in tree:
        node.update_cost = 1.0
    tree.aggregate_popularity()
    return tree


def build_random_tree(num_nodes: int = 400, seed: int = 3) -> NamespaceTree:
    """A random tree with Zipf-ish popularity, deterministic per seed."""
    rng = random.Random(seed)
    tree = NamespaceTree()
    dirs = [tree.root]
    for i in range(num_nodes // 5):
        parent = rng.choice(dirs)
        if parent.depth < 8:
            dirs.append(tree.add_child(parent, f"d{i}", is_directory=True))
    for i in range(num_nodes - len(tree)):
        parent = rng.choice(dirs)
        node = tree.add_child(parent, f"f{i}", is_directory=False)
        tree.record_access(node, weight=rng.expovariate(0.02) + 1.0)
    for node in tree:
        node.update_cost = 0.1 + rng.random()
    tree.aggregate_popularity()
    return tree


@pytest.fixture
def sample_tree() -> NamespaceTree:
    return build_sample_tree()


@pytest.fixture
def random_tree() -> NamespaceTree:
    return build_random_tree()


@pytest.fixture(scope="session")
def tiny_dtr_workload():
    """A miniature DTR-profile workload shared across test modules."""
    profile = DatasetProfile.dtr(num_nodes=1200, scale=6e-5)
    return TraceGenerator(profile, num_clients=20).generate()


@pytest.fixture(scope="session")
def tiny_lmbe_workload():
    profile = DatasetProfile.lmbe(num_nodes=1200, scale=3e-5)
    return TraceGenerator(profile, num_clients=20).generate()
