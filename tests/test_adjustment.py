"""Unit tests for Dynamic-Adjustment (counters, pending pool, adjuster)."""

import math

import pytest

from repro.core import DecayingCounter, DynamicAdjuster, NamespaceTree, PendingPool
from repro.core.adjustment import AdjustmentReport


# ----------------------------------------------------------------------
# DecayingCounter
# ----------------------------------------------------------------------
def test_counter_accumulates_without_decay():
    counter = DecayingCounter(decay_rate=0.0)
    counter.record(0.0)
    counter.record(10.0)
    assert counter.value() == pytest.approx(2.0)


def test_counter_decays_exponentially():
    counter = DecayingCounter(decay_rate=0.5)
    counter.record(0.0, weight=8.0)
    assert counter.value(now=2.0) == pytest.approx(8.0 * math.exp(-1.0))


def test_counter_decay_applied_before_record():
    counter = DecayingCounter(decay_rate=1.0)
    counter.record(0.0, weight=4.0)
    counter.record(1.0, weight=1.0)
    assert counter.value() == pytest.approx(4.0 * math.exp(-1.0) + 1.0)


def test_counter_clamps_out_of_order_records():
    # Event completions in the simulator are not globally monotone; an
    # out-of-order record counts at the current decay level, never raises.
    counter = DecayingCounter(decay_rate=0.0)
    counter.record(5.0)
    counter.record(1.0)
    assert counter.value() == pytest.approx(2.0)


def test_counter_rejects_negative_decay():
    with pytest.raises(ValueError):
        DecayingCounter(decay_rate=-0.1)


def test_counter_value_without_advance():
    counter = DecayingCounter(decay_rate=0.1)
    counter.record(0.0, weight=3.0)
    assert counter.value() == pytest.approx(3.0)


# ----------------------------------------------------------------------
# PendingPool
# ----------------------------------------------------------------------
def _node(tree, path, weight):
    node = tree.add_path(path)
    tree.record_access(node, weight)
    tree.aggregate_popularity()
    return node


def test_pool_offer_and_drain():
    tree = NamespaceTree()
    a = _node(tree, "/a", 5.0)
    pool = PendingPool()
    pool.offer(a, source_server=1, popularity=5.0)
    assert len(pool) == 1
    assert pool.total_popularity == 5.0
    entries = pool.take_all()
    assert len(entries) == 1
    assert entries[0].subtree_root is a
    assert len(pool) == 0


def test_pool_rejects_negative_popularity():
    tree = NamespaceTree()
    a = _node(tree, "/a", 1.0)
    pool = PendingPool()
    with pytest.raises(ValueError):
        pool.offer(a, 0, -1.0)


def test_pool_entries_snapshot_is_copy():
    tree = NamespaceTree()
    a = _node(tree, "/a", 1.0)
    pool = PendingPool()
    pool.offer(a, 0, 1.0)
    snapshot = pool.entries()
    snapshot.clear()
    assert len(pool) == 1


# ----------------------------------------------------------------------
# DynamicAdjuster
# ----------------------------------------------------------------------
def _subtrees(tree, spec):
    """spec: list of (path, popularity, server). Returns owner dict."""
    owner = {}
    for path, pop, server in spec:
        node = tree.add_path(path, is_directory=True)
        tree.record_access(node, pop)
        owner[node] = server
    tree.aggregate_popularity()
    return owner


def _loads(owner, num_servers):
    loads = [0.0] * num_servers
    for root, server in owner.items():
        loads[server] += root.popularity
    return loads


def test_balanced_cluster_is_left_alone():
    tree = NamespaceTree()
    owner = _subtrees(tree, [("/a", 10, 0), ("/b", 10, 1)])
    adjuster = DynamicAdjuster(imbalance_tolerance=0.1)
    report = adjuster.adjust(owner, _loads(owner, 2), [1.0, 1.0])
    assert report.migrations == []
    assert report.offered == 0


def test_overloaded_server_sheds_to_light():
    tree = NamespaceTree()
    owner = _subtrees(
        tree, [("/a", 10, 0), ("/b", 10, 0), ("/c", 10, 0), ("/d", 1, 1)]
    )
    adjuster = DynamicAdjuster(imbalance_tolerance=0.1)
    report = adjuster.adjust(owner, _loads(owner, 2), [1.0, 1.0])
    assert report.migrations
    for _root, source, target in report.migrations:
        assert source == 0
        assert target == 1
    new_loads = _loads(owner, 2)
    assert abs(new_loads[0] - new_loads[1]) < 31


def test_adjust_reduces_imbalance():
    tree = NamespaceTree()
    spec = [(f"/s{i}", 5 + (i % 7), 0) for i in range(20)]
    spec += [(f"/t{i}", 1, 1) for i in range(3)]
    owner = _subtrees(tree, spec)
    before = _loads(owner, 2)
    adjuster = DynamicAdjuster(imbalance_tolerance=0.05)
    adjuster.adjust(owner, before, [1.0, 1.0])
    after = _loads(owner, 2)
    assert max(after) - min(after) < max(before) - min(before)


def test_capacity_weighted_ideal():
    tree = NamespaceTree()
    owner = _subtrees(tree, [(f"/s{i}", 10, 0) for i in range(6)])
    adjuster = DynamicAdjuster(imbalance_tolerance=0.0)
    adjuster.adjust(owner, _loads(owner, 2), [2.0, 1.0])
    after = _loads(owner, 2)
    # Server 0 has twice the capacity: should keep roughly 2/3 of the load.
    assert after[0] > after[1]


def test_report_moved_popularity():
    tree = NamespaceTree()
    owner = _subtrees(tree, [("/a", 30, 0), ("/b", 2, 1)])
    adjuster = DynamicAdjuster(imbalance_tolerance=0.0)
    report = adjuster.adjust(owner, _loads(owner, 2), [1.0, 1.0])
    assert report.moved_popularity == pytest.approx(
        sum(n.popularity for n, _s, _t in report.migrations)
    )


def test_mismatched_inputs_rejected():
    adjuster = DynamicAdjuster()
    with pytest.raises(ValueError):
        adjuster.adjust({}, [1.0], [1.0, 1.0])


def test_zero_capacity_rejected():
    adjuster = DynamicAdjuster()
    with pytest.raises(ValueError):
        adjuster.adjust({}, [0.0, 0.0], [0.0, 0.0])


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError):
        DynamicAdjuster(imbalance_tolerance=-0.5)


def test_empty_system_noop():
    adjuster = DynamicAdjuster()
    report = adjuster.adjust({}, [0.0, 0.0], [1.0, 1.0])
    assert isinstance(report, AdjustmentReport)
    assert report.migrations == []


def test_adjust_converges_over_rounds():
    tree = NamespaceTree()
    spec = [(f"/s{i}", 2 + (i * 13 % 11), i % 2) for i in range(40)]
    owner = _subtrees(tree, spec)
    adjuster = DynamicAdjuster(imbalance_tolerance=0.05)
    for _ in range(10):
        report = adjuster.adjust(owner, _loads(owner, 4), [1.0] * 4)
        if not report.migrations:
            break
    loads = _loads(owner, 4)
    mu = sum(loads) / 4
    assert max(loads) <= mu * 1.6
