"""Storage subsystem: WAL codec, damage injection, and the three backends."""

import json
import os
import struct

import pytest

from repro.storage import (
    HEADER_SIZE,
    MemoryStore,
    STORE_BACKENDS,
    ServerLogState,
    WalFile,
    encode_json_record,
    encode_record,
    make_store,
    scan_records,
)
from repro.storage.wal import CORRUPT, TORN


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
def test_encode_record_framing():
    frame = encode_record(b"hello")
    assert len(frame) == HEADER_SIZE + 5
    length, _crc = struct.unpack("<II", frame[:HEADER_SIZE])
    assert length == 5
    assert frame[HEADER_SIZE:] == b"hello"


def test_encode_json_record_is_compact_and_sorted():
    frame = encode_json_record({"b": 1, "a": 2})
    payload = frame[HEADER_SIZE:]
    assert payload == b'{"a":2,"b":1}'  # sorted keys, no whitespace


def test_scan_clean_buffer():
    data = encode_record(b"one") + encode_record(b"two")
    scan = scan_records(data)
    assert scan.records == (b"one", b"two")
    assert scan.clean_length == len(data)
    assert not scan.truncated
    assert scan.reason is None and scan.dropped_bytes == 0


def test_scan_empty_buffer_is_clean():
    scan = scan_records(b"")
    assert scan.records == () and not scan.truncated


def test_scan_detects_torn_header():
    data = encode_record(b"ok") + b"\x03\x00"  # 2 bytes of a header
    scan = scan_records(data)
    assert scan.records == (b"ok",)
    assert scan.reason == TORN
    assert scan.dropped_bytes == 2


def test_scan_detects_torn_payload():
    good = encode_record(b"ok")
    torn = encode_record(b"damaged-record")[:-4]  # payload cut short
    scan = scan_records(good + torn)
    assert scan.records == (b"ok",)
    assert scan.reason == TORN
    assert scan.clean_length == len(good)


def test_scan_detects_corrupt_payload():
    good = encode_record(b"ok")
    bad = bytearray(encode_record(b"rotten"))
    bad[-1] ^= 0xFF
    scan = scan_records(good + bytes(bad))
    assert scan.records == (b"ok",)
    assert scan.reason == CORRUPT
    assert scan.dropped_bytes == len(bad)


def test_scan_damage_shadows_later_records():
    # A corrupt record in the middle drops everything after it too:
    # sequential framing means nothing past the damage can be trusted.
    bad = bytearray(encode_record(b"middle"))
    bad[HEADER_SIZE] ^= 0xFF
    data = encode_record(b"first") + bytes(bad) + encode_record(b"last")
    scan = scan_records(data)
    assert scan.records == (b"first",)
    assert scan.dropped_bytes == len(bad) + len(encode_record(b"last"))


# ----------------------------------------------------------------------
# WalFile: append / sync / recover / damage
# ----------------------------------------------------------------------
def test_walfile_round_trip(tmp_path):
    wal = WalFile(str(tmp_path / "a.log"))
    wal.append({"k": "fence", "epoch": 3}, sync=True)
    wal.append({"k": "ack", "op": 1}, sync=True)
    records, scan = wal.recover()
    assert records == [{"epoch": 3, "k": "fence"}, {"k": "ack", "op": 1}]
    assert not scan.truncated
    wal.close()


def test_walfile_reopen_appends(tmp_path):
    path = str(tmp_path / "a.log")
    first = WalFile(path)
    first.append({"n": 1}, sync=True)
    first.close()
    second = WalFile(path)
    assert second.durable_offset == os.path.getsize(path)
    second.append({"n": 2}, sync=True)
    records, _ = second.recover()
    assert [r["n"] for r in records] == [1, 2]
    second.close()


def test_walfile_tear_tail_spares_synced_records(tmp_path):
    wal = WalFile(str(tmp_path / "a.log"))
    for op in range(5):
        wal.append({"k": "ack", "op": op}, sync=True)
    wal.append({"k": "grant", "path": "/x"})  # unsynced
    assert wal.tear_tail()
    records, scan = wal.recover()
    assert scan.reason == TORN
    assert [r["op"] for r in records] == [0, 1, 2, 3, 4]
    wal.close()


def test_walfile_tear_tail_never_scans_clean(tmp_path):
    # The cut must land strictly inside a record: a boundary-aligned cut
    # would read back as a clean, shorter log and recovery would miss it.
    wal = WalFile(str(tmp_path / "a.log"))
    wal.append({"k": "ack", "op": 0}, sync=True)
    wal.append({"k": "grant", "path": "/a"})
    wal.append({"k": "grant", "path": "/b"})
    wal.tear_tail()
    _, scan = wal.recover(repair=False)
    assert scan.truncated
    wal.close()


def test_walfile_tear_tail_on_fully_synced_log(tmp_path):
    # No unsynced span: the fault models a crash mid-append of the *next*
    # record, so a partial junk frame lands past the synced prefix.
    wal = WalFile(str(tmp_path / "a.log"))
    wal.append({"k": "ack", "op": 0}, sync=True)
    wal.tear_tail()
    records, scan = wal.recover()
    assert scan.reason == TORN
    assert records == [{"k": "ack", "op": 0}]
    wal.close()


def test_walfile_corrupt_tail_detected_and_repaired(tmp_path):
    wal = WalFile(str(tmp_path / "a.log"))
    wal.append({"k": "ack", "op": 0}, sync=True)
    wal.append({"k": "grant", "path": "/x"})
    assert wal.corrupt_tail()
    records, scan = wal.recover()
    assert scan.reason == CORRUPT
    assert records == [{"k": "ack", "op": 0}]
    # Repair physically truncated the file: a fresh scan is clean and the
    # log accepts appends again.
    wal.append({"k": "ack", "op": 1}, sync=True)
    records, scan = wal.recover()
    assert not scan.truncated
    assert [r.get("op") for r in records] == [0, 1]
    wal.close()


def test_walfile_corrupt_tail_on_fully_synced_log(tmp_path):
    wal = WalFile(str(tmp_path / "a.log"))
    wal.append({"k": "ack", "op": 0}, sync=True)
    wal.corrupt_tail()
    records, scan = wal.recover()
    assert scan.reason == CORRUPT
    assert records == [{"k": "ack", "op": 0}]
    wal.close()


def test_walfile_reset_empties_log(tmp_path):
    wal = WalFile(str(tmp_path / "a.log"))
    wal.append({"n": 1}, sync=True)
    wal.reset()
    assert wal.size == 0 and wal.durable_offset == 0
    records, _ = wal.recover()
    assert records == []
    wal.close()


# ----------------------------------------------------------------------
# ServerLogState replay semantics
# ----------------------------------------------------------------------
def test_server_log_state_replay():
    state = ServerLogState()
    for record in [
        {"k": "fence", "epoch": 2},
        {"k": "ack", "op": 7},
        {"k": "grant", "path": "/a"},
        {"k": "grant", "path": "/b"},
        {"k": "revoke", "path": "/a"},
        {"k": "fence", "epoch": 1},  # stale fence never regresses
        {"k": "mystery", "x": 1},  # unknown kinds ignored
    ]:
        state.apply(record)
    assert state.fence_epoch == 2
    assert state.acked_ops == [7]
    assert state.subtrees == {"/b"}


def test_server_log_state_snapshot_round_trip():
    state = ServerLogState()
    state.apply({"k": "ack", "op": 1})
    state.apply({"k": "grant", "path": "/s"})
    rebuilt = ServerLogState.from_snapshot(state.to_snapshot())
    assert rebuilt.to_snapshot() == state.to_snapshot()
    assert ServerLogState.from_snapshot(None).to_snapshot() == {
        "fence_epoch": 0, "acked_ops": [], "subtrees": [],
    }


# ----------------------------------------------------------------------
# Backend contract (all three via make_store)
# ----------------------------------------------------------------------
def drive_store(store):
    """A tiny canonical history every backend must replay identically."""
    store.append_fence(0, 3, t=0.0)
    for op in range(10):
        store.append_ack(0, op, f"/f{op}", t=float(op))
    store.append_mutation(0, "grant", "/sub1", t=1.0)
    store.append_mutation(0, "grant", "/sub2", t=2.0)
    store.append_mutation(0, "revoke", "/sub1", t=3.0)
    store.append_directive({"epoch": 1, "kind": "rejoin", "server": 0, "t": 0.5})


@pytest.mark.parametrize("backend", STORE_BACKENDS)
def test_backend_round_trip(backend, tmp_path):
    store = make_store(backend, directory=str(tmp_path / backend))
    try:
        drive_store(store)
        recovered = store.recover_server(0)
        assert recovered.fence_epoch == 3
        assert recovered.acked_ops == list(range(10))
        assert recovered.subtrees == ["/sub2"]
        assert not recovered.truncated
        assert store.recover_directives() == [
            {"epoch": 1, "kind": "rejoin", "server": 0, "t": 0.5}
        ]
    finally:
        store.close()


@pytest.mark.parametrize("backend", ["wal", "sqlite"])
def test_backend_snapshot_then_tail_replay(backend, tmp_path):
    store = make_store(backend, directory=str(tmp_path), snapshot_every=8)
    try:
        drive_store(store)  # 14 server records -> at least one snapshot
        assert store.snapshots >= 1
        recovered = store.recover_server(0)
        assert recovered.snapshot_loaded
        assert recovered.acked_ops == list(range(10))
        assert recovered.subtrees == ["/sub2"]
    finally:
        store.close()


@pytest.mark.parametrize("backend", ["wal", "sqlite"])
@pytest.mark.parametrize("damage", ["tear_tail", "corrupt_tail"])
def test_backend_damage_detected_and_acks_survive(backend, damage, tmp_path):
    store = make_store(backend, directory=str(tmp_path), snapshot_every=0)
    try:
        drive_store(store)
        assert getattr(store, damage)(0)
        recovered = store.recover_server(0)
        assert recovered.truncated
        assert recovered.truncate_reason in ("torn", "corrupt")
        # Damage only reaches the unsynced tail: every synced ack survives.
        assert recovered.acked_ops == list(range(10))
        assert recovered.fence_epoch == 3
        assert store.truncations == 1 and store.dropped > 0
    finally:
        store.close()


@pytest.mark.parametrize("backend", ["wal", "sqlite"])
def test_backend_damage_on_clean_log_injects_inflight_junk(backend, tmp_path):
    # Even with everything synced the fault applies (a crash mid-append of
    # the next record) and recovery still detects it.
    store = make_store(backend, directory=str(tmp_path), snapshot_every=0)
    try:
        store.append_ack(0, 0, "/f", t=0.0)
        assert store.tear_tail(0)
        recovered = store.recover_server(0)
        assert recovered.truncated and recovered.acked_ops == [0]
    finally:
        store.close()


def test_memory_store_is_not_durable_and_damage_is_noop():
    store = MemoryStore()
    assert store.durable is False
    drive_store(store)
    assert store.tear_tail(0) is False
    assert store.corrupt_tail(0) is False
    recovered = store.recover_server(0)
    assert recovered.acked_ops == list(range(10))
    store.wipe_server(0)
    assert store.recover_server(0).acked_ops == []


def test_make_store_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown store backend"):
        make_store("etcd")


def test_wal_store_files_on_disk(tmp_path):
    store = make_store("wal", directory=str(tmp_path), snapshot_every=4)
    drive_store(store)
    store.close()
    names = sorted(os.listdir(tmp_path))
    assert "directives.log" in names
    assert any(n.startswith("wal-") for n in names)
    snapshot = next(n for n in names if n.startswith("snapshot-"))
    payload = json.loads((tmp_path / snapshot).read_text())
    assert set(payload) == {"fence_epoch", "acked_ops", "subtrees"}


def test_wal_store_cleanup_spares_foreign_files(tmp_path):
    (tmp_path / "keep.txt").write_text("mine")
    (tmp_path / "wal-0.log").write_bytes(b"stale")
    store = make_store("wal", directory=str(tmp_path))
    store.close()
    assert (tmp_path / "keep.txt").read_text() == "mine"
    assert not (tmp_path / "wal-0.log").exists()


def test_store_init_owns_directory_for_one_run(tmp_path):
    # A store owns its directory for exactly one run: re-pointing a new
    # instance at it starts clean rather than replaying a stale run's
    # state (kill9 recovery happens *within* a run, via recover_server).
    first = make_store("sqlite", directory=str(tmp_path))
    drive_store(first)
    first.close()
    second = make_store("sqlite", directory=str(tmp_path))
    try:
        assert second.recover_server(0).acked_ops == []
        assert second.recover_directives() == []
    finally:
        second.close()
