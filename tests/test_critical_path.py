"""Critical-path analysis, Perfetto export, and the failover bench axis."""

import dataclasses
import io
import json
import math
from collections import defaultdict

import pytest

from repro import registry
from repro.obs import (
    CRITICAL_CATEGORIES,
    Telemetry,
    analyze_critical_path,
    render_critical_path,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.simulation import SimulationConfig
from repro.simulation.runner import ClusterSimulator
from repro.traces import DatasetProfile, TraceGenerator

SAMPLE = 40


@pytest.fixture(scope="module")
def traced_records():
    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=900, scale=3e-4),
        seed=21,
        create_fraction=0.08,
    )
    workload = TraceGenerator(profile, num_clients=16).generate()

    def run():
        telemetry = Telemetry(enabled=False)
        sim = ClusterSimulator(
            registry.create("d2-tree"), workload, 6,
            SimulationConfig(trace_sample=SAMPLE), telemetry=telemetry,
        )
        try:
            result = sim.run()
        finally:
            sim.close()
        buffer = io.StringIO()
        write_jsonl(telemetry, buffer, summary=result.to_dict())
        return [json.loads(line) for line in buffer.getvalue().splitlines()]

    return run(), run()


def test_analysis_components_sum_to_end_to_end(traced_records):
    records, _ = traced_records
    analysis = analyze_critical_path(records)
    assert analysis["ops"] > 0
    assert math.isclose(
        sum(analysis["components_seconds"].values()),
        analysis["total_end_to_end_seconds"],
        rel_tol=1e-9,
    )
    assert tuple(analysis["components_seconds"]) == CRITICAL_CATEGORIES
    assert sum(
        info["ops"] for info in analysis["per_subtree"].values()
    ) == analysis["ops"]
    assert len(analysis["slowest_ops"]) <= 5
    slowest = [row["latency_seconds"] for row in analysis["slowest_ops"]]
    assert slowest == sorted(slowest, reverse=True)


def test_analysis_and_render_are_byte_deterministic(traced_records):
    first, second = traced_records
    a1, a2 = analyze_critical_path(first), analyze_critical_path(second)
    assert json.dumps(a1, sort_keys=True) == json.dumps(a2, sort_keys=True)
    assert render_critical_path(a1) == render_critical_path(a2)
    rendered = render_critical_path(a1)
    assert "latency components" in rendered
    assert "queueing" in rendered


def test_chrome_trace_is_valid_and_balanced(traced_records):
    records, _ = traced_records
    document = to_chrome_trace(records)
    events = document["traceEvents"]
    assert events, "no trace events emitted"
    timestamps = [e["ts"] for e in events if e["ph"] != "M"]
    assert timestamps == sorted(timestamps)
    stacks = defaultdict(list)
    for event in events:
        key = (event["pid"], event["tid"])
        if event["ph"] == "B":
            stacks[key].append(event["name"])
        elif event["ph"] == "E":
            assert stacks[key] and stacks[key][-1] == event["name"], (
                f"unmatched E for {event['name']} on {key}"
            )
            stacks[key].pop()
    assert all(not stack for stack in stacks.values()), "unclosed B events"
    # Replica fan-out is off the critical path: async spans become instants.
    assert all(e["ph"] in ("B", "E", "i", "M") for e in events)

    buffer = io.StringIO()
    count = write_chrome_trace(records, buffer)
    assert count == len(events)
    parsed = json.loads(buffer.getvalue())
    assert len(parsed["traceEvents"]) == count


def test_analysis_of_spanless_records_is_empty():
    analysis = analyze_critical_path(
        [{"kind": "run", "schema": 2}, {"kind": "event", "t": 0.0, "event": "x"}]
    )
    assert analysis["ops"] == 0
    assert analysis["total_end_to_end_seconds"] == 0.0
    assert render_critical_path(analysis)  # renders without crashing


def test_bench_failover_reads_spans():
    from repro.bench import bench_failover, trend_record

    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=600, scale=1e-5), seed=5
    )
    workload = TraceGenerator(profile, num_clients=8).generate()
    report = bench_failover(
        workload, num_servers=4, repeats=1, max_ops=1000, seed=5
    )
    assert report["benchmark"] == "failover_latency"
    assert report["detections"] and report["recoveries"]
    assert report["mean_detection_seconds"] > 0.0
    assert report["mean_downtime_seconds"] >= report["mean_recovery_seconds"]
    record = trend_record("failover", report)
    assert record["axis"] == "failover"
    assert record["mean_detection_seconds"] == report["mean_detection_seconds"]


def test_trend_records_cover_every_axis(tmp_path):
    from repro.bench import append_trend, trend_record

    routing = {"trace": "T", "speedup_geomean": 2.0}
    simulate = {
        "trace": "T", "speedup": 1.5,
        "engines": {"columnar": {"normalized_ops_per_sec": 0.02}},
    }
    recovery = {
        "points": [
            {"backend": "wal", "records_per_sec": 10.0},
            {"backend": "wal", "records_per_sec": 30.0},
            {"backend": "sqlite", "records_per_sec": 20.0},
        ],
    }
    path = tmp_path / "trends.jsonl"
    append_trend(trend_record("routing", routing), str(path))
    append_trend(trend_record("simulate", simulate), str(path))
    append_trend(trend_record("recovery", recovery), str(path))
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [line["axis"] for line in lines] == [
        "routing", "simulate", "recovery",
    ]
    assert lines[0]["speedup_geomean"] == 2.0
    assert lines[2]["records_per_sec"] == {"wal": 30.0, "sqlite": 20.0}
    with pytest.raises(ValueError):
        trend_record("nope", {})
