"""Property tests: namespace-tree integrity under random mutation sequences."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NamespaceTree


def build_tree(seed: int, size: int) -> NamespaceTree:
    rng = random.Random(seed)
    tree = NamespaceTree()
    dirs = [tree.root]
    for i in range(size):
        parent = rng.choice(dirs)
        is_dir = rng.random() < 0.4
        node = tree.add_child(parent, f"n{i}", is_directory=is_dir,
                              individual_popularity=rng.random() * 5)
        if is_dir:
            dirs.append(node)
    tree.aggregate_popularity()
    return tree


mutation_scripts = st.lists(
    st.tuples(
        st.sampled_from(["rename", "move", "remove"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=15,
)


def apply_mutations(tree: NamespaceTree, script, seed: int) -> int:
    """Apply a mutation script, skipping structurally-invalid picks."""
    rng = random.Random(seed)
    applied = 0
    counter = 0
    for action, pick in script:
        live = [n for n in tree if n.parent is not None]
        if not live:
            break
        node = live[pick % len(live)]
        counter += 1
        try:
            if action == "rename":
                tree.rename(node, f"renamed{counter}")
            elif action == "move":
                dirs = [d for d in tree if d.is_directory]
                target = dirs[rng.randrange(len(dirs))]
                tree.move_node(node, target)
            else:
                tree.remove(node)
            applied += 1
        except ValueError:
            continue  # invalid pick (cycle, collision, root) — skipped
    return applied


@given(st.integers(min_value=0, max_value=500), mutation_scripts)
@settings(max_examples=40, deadline=None)
def test_tree_stays_valid_under_mutations(seed, script):
    tree = build_tree(seed, 40)
    apply_mutations(tree, script, seed)
    tree.validate()


@given(st.integers(min_value=0, max_value=500), mutation_scripts)
@settings(max_examples=40, deadline=None)
def test_path_index_consistent_under_mutations(seed, script):
    tree = build_tree(seed, 40)
    apply_mutations(tree, script, seed)
    for node in tree:
        assert tree.lookup(node.path) is node


@given(st.integers(min_value=0, max_value=500), mutation_scripts)
@settings(max_examples=40, deadline=None)
def test_popularity_conserved_under_rename_and_move(seed, script):
    tree = build_tree(seed, 40)
    # Drop removals: only renames and moves, which conserve total popularity.
    conservative = [(a, p) for a, p in script if a != "remove"]
    before = tree.total_popularity
    apply_mutations(tree, conservative, seed)
    tree.aggregate_popularity()
    assert abs(tree.total_popularity - before) < 1e-6


@given(st.integers(min_value=0, max_value=500), mutation_scripts)
@settings(max_examples=40, deadline=None)
def test_live_count_matches_iteration(seed, script):
    tree = build_tree(seed, 40)
    apply_mutations(tree, script, seed)
    assert len(tree) == sum(1 for _ in tree)
    assert len(tree.nodes) == len(tree)


@given(st.integers(min_value=0, max_value=500), mutation_scripts)
@settings(max_examples=40, deadline=None)
def test_depths_consistent_after_moves(seed, script):
    tree = build_tree(seed, 40)
    apply_mutations(tree, script, seed)
    for node in tree:
        if node.parent is not None:
            assert node.depth == node.parent.depth + 1
