"""Tests for the CREATE extension: namespace growth during replay."""

import dataclasses

import pytest

from repro.baselines import (
    AngleCutScheme,
    DropScheme,
    DynamicSubtreeScheme,
    HashScheme,
    StaticSubtreeScheme,
)
from repro.core import D2TreeScheme
from repro.simulation import SimulationConfig, simulate
from repro.simulation.runner import ClusterSimulator
from repro.traces import DatasetProfile, OpType, TraceGenerator
from tests.conftest import build_random_tree


@pytest.fixture(scope="module")
def create_workload():
    profile = dataclasses.replace(
        DatasetProfile.lmbe(num_nodes=1200, scale=4e-5), create_fraction=0.2
    )
    return TraceGenerator(profile, num_clients=20).generate()


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def test_generator_marks_creates(create_workload):
    creates = [r for r in create_workload.trace.records if r.op is OpType.CREATE]
    assert creates
    assert len(create_workload.late_created_paths) == len(creates)


def test_create_precedes_every_other_access(create_workload):
    seen_create = set()
    late = set(create_workload.late_created_paths)
    for record in create_workload.trace.records:
        if record.path in late:
            if record.op is OpType.CREATE:
                assert record.path not in seen_create  # exactly one create
                seen_create.add(record.path)
            else:
                assert record.path in seen_create, "access before create"
    assert seen_create == late


def test_create_fraction_zero_by_default():
    workload = TraceGenerator(
        DatasetProfile.lmbe(num_nodes=800, scale=2e-5), num_clients=10
    ).generate()
    assert workload.late_created_paths == []
    assert all(r.op is not OpType.CREATE for r in workload.trace.records)


def test_create_is_not_a_query():
    assert not OpType.CREATE.is_query
    assert not OpType.UPDATE.is_query


# ----------------------------------------------------------------------
# place_created policies
# ----------------------------------------------------------------------
@pytest.fixture
def grown_tree():
    return build_random_tree(300, seed=55)


@pytest.mark.parametrize(
    "scheme_cls",
    [HashScheme, StaticSubtreeScheme, DynamicSubtreeScheme, DropScheme,
     AngleCutScheme, D2TreeScheme],
)
def test_place_created_places_new_leaf(grown_tree, scheme_cls):
    scheme = scheme_cls()
    placement = scheme.partition(grown_tree, 4)
    parent = next(n for n in grown_tree if n.is_directory and n.depth >= 2)
    fresh = grown_tree.add_child(parent, "fresh.txt")
    server = scheme.place_created(grown_tree, placement, fresh)
    assert 0 <= server < 4
    assert placement.primary_of(fresh) == server
    placement.validate_complete(grown_tree)


def test_hash_create_uses_path_hash(grown_tree):
    from repro.baselines.hashing import stable_hash

    scheme = HashScheme()
    placement = scheme.partition(grown_tree, 4)
    parent = next(n for n in grown_tree if n.is_directory)
    fresh = grown_tree.add_child(parent, "hashed.txt")
    server = scheme.place_created(grown_tree, placement, fresh)
    assert server == stable_hash(fresh.path) % 4


def test_static_create_joins_anchor(grown_tree):
    scheme = StaticSubtreeScheme(cut_depth=1)
    placement = scheme.partition(grown_tree, 4)
    parent = next(n for n in grown_tree if n.is_directory and n.depth >= 2)
    fresh = grown_tree.add_child(parent, "anchored.txt")
    server = scheme.place_created(grown_tree, placement, fresh)
    anchor = parent
    while anchor.depth > 1:
        anchor = anchor.parent
    assert server == placement.primary_of(anchor)


def test_dynamic_create_joins_parent_zone(grown_tree):
    scheme = DynamicSubtreeScheme(cut_depth=2)
    placement = scheme.partition(grown_tree, 4)
    parent = next(n for n in grown_tree if n.is_directory and n.depth >= 3)
    fresh = grown_tree.add_child(parent, "zoned.txt")
    server = scheme.place_created(grown_tree, placement, fresh)
    assert server == placement.primary_of(parent)


def test_d2_create_inside_subtree_colocated(grown_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(grown_tree, 4)
    root = next(r for r in placement.subtree_owner if r.is_directory)
    fresh = grown_tree.add_child(root, "colocated.txt")
    server = scheme.place_created(grown_tree, placement, fresh)
    assert server == placement.subtree_owner[root]


def test_d2_create_under_inter_node_opens_subtree(grown_tree):
    scheme = D2TreeScheme(global_layer_fraction=0.05)
    placement = scheme.partition(grown_tree, 4)
    inter = next(
        n for n in placement.split.global_layer
        if n.is_directory and any(c not in placement.split.global_layer for c in n.children)
    )
    fresh = grown_tree.add_child(inter, "newsubtree.txt")
    scheme.place_created(grown_tree, placement, fresh)
    assert fresh in placement.subtree_owner
    assert fresh in placement.split.subtree_roots


# ----------------------------------------------------------------------
# End-to-end replay with creates
# ----------------------------------------------------------------------
FAST = SimulationConfig(num_clients=20, adjust_every_ops=500)


@pytest.mark.parametrize(
    "scheme_cls",
    [D2TreeScheme, StaticSubtreeScheme, DynamicSubtreeScheme, DropScheme,
     AngleCutScheme],
)
def test_replay_with_creates_serves_everything(create_workload, scheme_cls):
    sim = ClusterSimulator(scheme_cls(), create_workload, 4, FAST)
    result = sim.run()
    assert result.operations == len(create_workload.trace)
    # Zone-based dynamic partitioning covers newcomers implicitly via their
    # parent's zone (rebuild_assignments), so its explicit-create count is
    # low; every other scheme must place most newcomers explicitly.
    if scheme_cls is DynamicSubtreeScheme:
        assert sim.created >= 1
    else:
        assert sim.created >= len(create_workload.late_created_paths) * 0.5


def test_created_nodes_forgotten_at_start(create_workload):
    sim = ClusterSimulator(D2TreeScheme(), create_workload, 4, FAST)
    late = [
        create_workload.tree.lookup(path)
        for path in create_workload.late_created_paths
    ]
    unplaced = sum(1 for node in late if not sim.placement.is_placed(node))
    # Nearly all late nodes start unplaced (hot/replicated ones are exempt).
    assert unplaced >= 0.9 * len(late)


def test_throughput_comparable_with_creates(create_workload):
    result = simulate(D2TreeScheme(), create_workload, 4, FAST)
    assert result.throughput > 0
