"""Tests for ASCII charts and trace statistics."""

import pytest

from repro.traces import DatasetProfile, OpType, Trace, TraceGenerator, TraceRecord
from repro.traces.stats import TraceStats, analyze_trace, estimate_zipf_exponent
from repro.viz import AsciiChart, render_series


# ----------------------------------------------------------------------
# AsciiChart
# ----------------------------------------------------------------------
def test_chart_renders_all_series_glyphs():
    chart = AsciiChart(width=30, height=8)
    chart.add_series("a", [1, 2, 3], [1, 2, 3])
    chart.add_series("b", [1, 2, 3], [3, 2, 1])
    out = chart.render(title="t")
    assert "t" in out
    assert "o=a" in out and "x=b" in out
    assert "o" in out and "x" in out


def test_chart_mismatched_series_rejected():
    chart = AsciiChart()
    with pytest.raises(ValueError):
        chart.add_series("a", [1, 2], [1])


def test_chart_drops_nonfinite_points():
    chart = AsciiChart()
    chart.add_series("a", [1, 2, 3], [1.0, float("inf"), 2.0])
    out = chart.render()
    assert "o=a" in out


def test_chart_all_nonfinite_rejected():
    chart = AsciiChart()
    with pytest.raises(ValueError):
        chart.add_series("a", [1], [float("inf")])


def test_chart_empty_render_rejected():
    with pytest.raises(ValueError):
        AsciiChart().render()


def test_chart_log_scale():
    chart = AsciiChart(logy=True, height=8, width=20)
    chart.add_series("a", [1, 2, 3], [1, 100, 10000])
    out = chart.render(ylabel="balance")
    assert "(log)" in out


def test_chart_constant_series():
    chart = AsciiChart(width=20, height=6)
    chart.add_series("flat", [1, 2, 3], [5, 5, 5])
    out = chart.render()
    assert "o=flat" in out


def test_render_series_helper():
    out = render_series(
        "Fig. 5", [5, 10, 20], {"d2": [1, 2, 3], "static": [2, 2, 2]}
    )
    assert "Fig. 5" in out
    assert "d2" in out and "static" in out
    assert "cluster size" in out


def test_chart_dimensions_respected():
    chart = AsciiChart(width=25, height=5)
    chart.add_series("a", [0, 1], [0, 1])
    out = chart.render()
    plot_lines = [l for l in out.splitlines() if "|" in l]
    assert len(plot_lines) == 5


# ----------------------------------------------------------------------
# Zipf estimation
# ----------------------------------------------------------------------
def test_zipf_estimate_recovers_exponent():
    counts = [round(1e6 / rank ** 1.2) for rank in range(1, 400)]
    estimate = estimate_zipf_exponent(counts)
    assert estimate == pytest.approx(1.2, abs=0.1)


def test_zipf_estimate_uniform_is_flat():
    assert estimate_zipf_exponent([10] * 50) == pytest.approx(0.0, abs=0.05)


def test_zipf_estimate_degenerate():
    assert estimate_zipf_exponent([]) == 0.0
    assert estimate_zipf_exponent([5, 3]) == 0.0


# ----------------------------------------------------------------------
# Trace statistics
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dtr_stats():
    workload = TraceGenerator(
        DatasetProfile.dtr(num_nodes=2000, scale=1e-4), num_clients=20
    ).generate()
    return analyze_trace(workload.trace)


def test_stats_basic_fields(dtr_stats):
    assert dtr_stats.operations > 0
    assert 0 < dtr_stats.distinct_paths <= dtr_stats.operations
    assert dtr_stats.max_depth == 49
    assert 0 < dtr_stats.mean_depth < 49


def test_stats_breakdown_matches_table2(dtr_stats):
    assert dtr_stats.breakdown[OpType.READ] == pytest.approx(0.677, abs=0.03)


def test_stats_skew_detects_hot_concentration():
    # DTR: ~83% of accesses target the hot set, which is ~5% of the
    # *referenced* paths at this scale.
    workload = TraceGenerator(
        DatasetProfile.dtr(num_nodes=2000, scale=1e-4), num_clients=20
    ).generate()
    stats = analyze_trace(workload.trace, top_fraction=0.05)
    assert stats.top_share > 0.6
    assert stats.zipf_exponent > 0.3


def test_stats_drift_detected(dtr_stats):
    # The diurnal rotation turns over part of the top set.
    assert 0.0 < dtr_stats.drift <= 1.0


def test_stats_depth_histogram_sums_to_paths(dtr_stats):
    assert sum(dtr_stats.depth_histogram) == dtr_stats.distinct_paths


def test_stats_describe_renders(dtr_stats):
    text = dtr_stats.describe()
    assert "operations=" in text
    assert "zipf" in text


def test_stats_empty_trace():
    stats = analyze_trace(Trace(name="empty"))
    assert stats.operations == 0
    assert stats.mean_depth == 0.0
    assert isinstance(stats, TraceStats)


def test_stats_static_trace_no_drift():
    records = [
        TraceRecord(float(i), OpType.READ, "/a/b.txt", 0) for i in range(100)
    ]
    stats = analyze_trace(Trace(name="static", records=records))
    assert stats.drift == 0.0
    assert stats.top_share == 1.0
