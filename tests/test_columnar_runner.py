"""Columnar simulate engine: bit-parity with the per-op engine.

The columnar engine is a faster evaluation order of the same model — not a
different model — so its entire contract is equality: for every scheme,
routing engine, and eligible configuration, ``simulate_engine="columnar"``
must return a :class:`SimulationResult` equal field-for-field to
``simulate_engine="perop"`` on the same seed. Ineligible runs (faults,
telemetry, durable stores, lossy networks) must fall back (``auto``) or
refuse loudly (``columnar``).
"""

import dataclasses

import pytest

from repro import registry
from repro.core.namespace import NamespaceTree
from repro.simulation import FaultPlan, SimulationConfig
from repro.simulation.runner import simulate
from repro.traces import DatasetProfile, TraceGenerator, iter_op_batches
from repro.traces.columns import OP_CODES


@pytest.fixture(scope="module")
def workload():
    """Small workload with CREATE conversions (exercises place_created)."""
    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=900, scale=3e-4),
        seed=21,
        create_fraction=0.08,
    )
    return TraceGenerator(profile, num_clients=16).generate()


def _run(workload, scheme_name, **overrides):
    config = SimulationConfig(**overrides)
    return simulate(registry.create(scheme_name), workload, 6, config)


@pytest.mark.parametrize("routing", ["fast", "legacy"])
@pytest.mark.parametrize("scheme_name", registry.available())
def test_columnar_matches_perop(workload, scheme_name, routing):
    columnar = _run(
        workload, scheme_name,
        simulate_engine="columnar", routing_engine=routing,
    )
    perop = _run(
        workload, scheme_name,
        simulate_engine="perop", routing_engine=routing,
    )
    assert columnar == perop


def test_auto_uses_columnar_when_eligible(workload):
    """Default config is fault-free, so auto == columnar == perop."""
    auto = _run(workload, "d2-tree")
    assert auto == _run(workload, "d2-tree", simulate_engine="columnar")
    assert auto == _run(workload, "d2-tree", simulate_engine="perop")


def test_parity_under_odd_config(workload):
    """Non-default client fleet and adjustment cadence stay bit-equal."""
    kwargs = dict(num_clients=37, adjust_every_ops=700)
    assert _run(
        workload, "d2-tree", simulate_engine="columnar", **kwargs
    ) == _run(workload, "d2-tree", simulate_engine="perop", **kwargs)


def test_streaming_trace_parity(workload):
    """A streamed (never materialized) trace replays bit-identically."""
    streamed = TraceGenerator(workload.profile, num_clients=16).stream()
    columnar = _run(streamed, "d2-tree", simulate_engine="columnar")
    assert columnar == _run(workload, "d2-tree", simulate_engine="perop")


def test_auto_falls_back_on_faults(workload):
    """Faulted runs are ineligible: auto uses per-op, columnar refuses."""
    plan = FaultPlan.parse(["crash:1@ops=500"])
    auto = _run(workload, "d2-tree", fault_plan=plan)
    perop = _run(
        workload, "d2-tree", fault_plan=FaultPlan.parse(["crash:1@ops=500"]),
        simulate_engine="perop",
    )
    assert auto == perop
    with pytest.raises(ValueError):
        _run(
            workload, "d2-tree",
            fault_plan=FaultPlan.parse(["crash:1@ops=500"]),
            simulate_engine="columnar",
        )


def test_unknown_engine_rejected(workload):
    with pytest.raises(ValueError):
        _run(workload, "d2-tree", simulate_engine="simd")


def test_arena_matches_object_aggregation(random_tree):
    """NodeArena replays Def. 2 aggregation in the object walk's exact
    addition order: popularity totals are bit-equal, including after a
    structural mutation invalidates and rebuilds the arena."""
    arena = random_tree.arena()
    assert arena is random_tree.arena()  # cached while structure unchanged
    for node in random_tree:
        node.individual_popularity *= 1.7
    arena.aggregate_popularity()
    got = {n.path: n.popularity for n in random_tree}
    random_tree.aggregate_popularity()
    assert {n.path: n.popularity for n in random_tree} == got

    # Structural change: the arena must be rebuilt and stay exact.
    target = random_tree.add_path("/arena-dst", is_directory=True)
    victim = next(
        n for n in random_tree
        if n.is_directory and n.depth >= 2 and n.children
    )
    random_tree.move_node(victim, target)
    rebuilt = random_tree.arena()
    assert rebuilt is not arena
    rebuilt.aggregate_popularity()
    got = {n.path: n.popularity for n in random_tree}
    random_tree.aggregate_popularity()
    assert {n.path: n.popularity for n in random_tree} == got


def test_iter_op_batches_roundtrip(workload):
    """Batches concatenate back to the per-record sequence, windows are
    bounded by batch_ops, and unresolvable paths are skipped."""
    tree = workload.tree
    records = workload.trace.records
    flat = []
    for batch in iter_op_batches(records, tree, batch_ops=64):
        assert len(batch) <= 64
        assert (
            len(batch.op_codes) == len(batch.node_ids)
            == len(batch.client_ids) == len(batch.timestamps)
            == len(batch.nodes)
        )
        ops = batch.ops()
        for i in range(len(batch)):
            flat.append(
                (
                    ops[i],
                    batch.nodes[i].path,
                    batch.client_ids[i],
                    batch.timestamps[i],
                )
            )
    expected = [
        (r.op, r.path, r.client_id, r.timestamp)
        for r in records
        if tree.lookup(r.path) is not None
    ]
    assert flat == expected


def test_iter_op_batches_skips_unresolved():
    tree = NamespaceTree()
    tree.add_path("/known")
    from repro.traces import OpType, TraceRecord

    records = [
        TraceRecord(timestamp=0.0, op=OpType.READ, client_id=0, path="/known"),
        TraceRecord(timestamp=1.0, op=OpType.READ, client_id=1, path="/ghost"),
        TraceRecord(timestamp=2.0, op=OpType.UPDATE, client_id=2, path="/known"),
    ]
    batches = list(iter_op_batches(records, tree, batch_ops=2))
    paths = [n.path for b in batches for n in b.nodes]
    assert paths == ["/known", "/known"]
    codes = [c for b in batches for c in b.op_codes]
    assert codes == [OP_CODES[OpType.READ], OP_CODES[OpType.UPDATE]]


def test_iter_op_batches_rejects_bad_window(workload):
    with pytest.raises(ValueError):
        next(iter_op_batches(workload.trace.records, workload.tree, 0))
