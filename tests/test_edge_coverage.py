"""Edge-case tests across modules (formatting, degenerate inputs, growth)."""

import pytest

from repro.baselines import HashScheme, StaticSubtreeScheme
from repro.core import D2TreeScheme, NamespaceTree
from repro.metrics import MetricsReport, evaluate_placement
from repro.placement import Placement
from repro.repair import move_with_repair
from repro.simulation import summarize_latencies
from repro.simulation.stats import SimulationResult
from repro.traces import DatasetProfile, Trace
from repro.traces.generator import GeneratedWorkload
from tests.conftest import build_random_tree


# ----------------------------------------------------------------------
# Reports and formatting
# ----------------------------------------------------------------------
def test_metrics_report_row_handles_infinities():
    report = MetricsReport(
        scheme="x", num_servers=2, locality=float("inf"),
        balance=float("inf"), loads=[1, 1], mu=1.0, weighted_jumps=0.0,
    )
    row = report.row()
    assert "inf" in row
    assert report.locality_e9 is None


def test_single_server_evaluation_is_degenerate_but_safe():
    tree = build_random_tree(100)
    placement = Placement(1)
    for node in tree:
        placement.assign(node, 0)
    with pytest.raises(ValueError):
        evaluate_placement(tree, placement)  # Eq. 2 needs two servers


def test_simulation_result_mean_jumps_zero_ops():
    result = SimulationResult(
        scheme="x", trace="t", num_servers=2, operations=0, makespan=0.0,
        throughput=0.0, latency=summarize_latencies([]),
    )
    assert result.mean_jumps == 0.0


def test_latency_percentiles_single_sample():
    summary = summarize_latencies([0.5])
    assert summary.p50 == summary.p95 == summary.p99 == summary.maximum == 0.5


# ----------------------------------------------------------------------
# Repair via move on plain placements
# ----------------------------------------------------------------------
def test_move_with_repair_hash_mode():
    tree = build_random_tree(200, seed=61)
    placement = HashScheme().partition(tree, 4)
    node = next(n for n in tree if n.is_directory and n.depth == 1 and n.children)
    target = next(
        d for d in tree
        if d.is_directory and d.depth == 2
        and node not in d.ancestors(include_self=True)
    )
    report = move_with_repair(placement, tree, node, target, cut_depth=-1)
    assert report.paths_changed == node.subtree_size()
    placement.validate_complete(tree)


def test_move_with_repair_static_mode():
    tree = build_random_tree(200, seed=62)
    placement = StaticSubtreeScheme(cut_depth=1).partition(tree, 4)
    node = next(n for n in tree if n.is_directory and n.depth == 1 and n.children)
    target = next(
        d for d in tree
        if d.is_directory and d.depth == 1 and d is not node
    )
    report = move_with_repair(placement, tree, node, target, cut_depth=1)
    # The moved subtree now anchors under the target: it adopts one server.
    owners = {placement.primary_of(m) for m in node.descendants(include_self=True)}
    assert len(owners) == 1
    assert report.paths_changed == node.subtree_size()


# ----------------------------------------------------------------------
# Growth on plain placements
# ----------------------------------------------------------------------
def test_generic_grow_extends_indexable_range():
    tree = build_random_tree(100)
    placement = HashScheme().partition(tree, 2)
    new = placement.grow(capacity=2.0)
    assert new == 2
    placement.assign(tree.root, new)
    assert placement.primary_of(tree.root) == 2
    assert placement.capacities == [1.0, 1.0, 2.0]


# ----------------------------------------------------------------------
# Trace / workload degenerate cases
# ----------------------------------------------------------------------
def test_trace_rounds_more_than_records():
    trace = Trace(name="tiny")
    rounds = trace.rounds(3)
    assert len(rounds) == 3
    assert all(len(r) == 0 for r in rounds)


def test_hot_hit_fraction_empty_trace():
    workload = GeneratedWorkload(
        profile=DatasetProfile.dtr(num_nodes=100, scale=1e-9),
        tree=NamespaceTree(),
        trace=Trace(name="empty"),
    )
    assert workload.hot_hit_fraction() == 0.0


# ----------------------------------------------------------------------
# D2 scheme parameter edges
# ----------------------------------------------------------------------
def test_d2_negative_promote_threshold_rejected():
    with pytest.raises(ValueError):
        D2TreeScheme(promote_threshold=-1.0)


def test_d2_negative_demote_threshold_rejected():
    with pytest.raises(ValueError):
        D2TreeScheme(demote_threshold=-0.1)


def test_d2_promotion_noop_without_subtrees():
    tree = NamespaceTree()
    tree.add_path("/only.txt")
    tree.record_access(tree.lookup("/only.txt"), 5.0)
    tree.aggregate_popularity()
    scheme = D2TreeScheme(global_layer_fraction=1.0)
    placement = scheme.partition(tree, 2)
    assert scheme.rebalance(tree, placement) == []


def test_locks_contention_no_acquisitions():
    from repro.cluster import LockManager

    assert LockManager().contention() == 0.0
