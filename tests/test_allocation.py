"""Unit tests for mirror-division subtree allocation."""

import random

import pytest

from repro.core import (
    allocate_subtrees,
    greedy_allocate,
    mirror_division,
    sampled_mirror_division,
    split_by_proportion,
)
from tests.conftest import build_random_tree


def test_paper_fig4_example():
    # Five subtrees with popularity ratios .5/.2/.1/.1/.1 and three servers
    # with capacities .5/.3/.2 — the worked example of Fig. 4.
    result = mirror_division([50, 20, 10, 10, 10], [5, 3, 2])
    assert result.assignment == [0, 1, 1, 2, 2]
    assert result.loads == [50, 30, 20]


def test_every_subtree_assigned():
    result = mirror_division([3, 1, 4, 1, 5, 9, 2, 6], [1, 1, 1])
    assert len(result.assignment) == 8
    assert all(0 <= s < 3 for s in result.assignment)


def test_loads_match_assignment():
    pops = [3, 1, 4, 1, 5]
    result = mirror_division(pops, [1, 1])
    loads = [0.0, 0.0]
    for pop, server in zip(pops, result.assignment):
        loads[server] += pop
    assert result.loads == loads


def test_total_load_conserved():
    pops = [7, 2, 9, 4]
    result = mirror_division(pops, [2, 1, 1])
    assert sum(result.loads) == pytest.approx(sum(pops))


def test_proportional_to_capacity():
    # Many small subtrees: loads should track the capacity ratio closely.
    rng = random.Random(5)
    pops = [rng.random() for _ in range(2000)]
    caps = [3.0, 1.0]
    result = mirror_division(pops, caps)
    ratio = result.loads[0] / sum(result.loads)
    assert ratio == pytest.approx(0.75, abs=0.02)


def test_empty_subtrees_rejected():
    with pytest.raises(ValueError):
        mirror_division([], [1, 1])


def test_negative_popularity_rejected():
    with pytest.raises(ValueError):
        mirror_division([1, -2], [1, 1])


def test_zero_total_capacity_rejected():
    with pytest.raises(ValueError):
        mirror_division([1, 2], [0, 0])


def test_single_server_gets_everything():
    result = mirror_division([5, 3, 2], [10])
    assert result.assignment == [0, 0, 0]


def test_zero_popularity_subtrees_round_robin():
    result = mirror_division([0, 0, 0, 0], [1, 1])
    assert sorted(result.assignment) == [0, 0, 1, 1]


def test_relative_loads():
    result = mirror_division([4, 4], [2, 2])
    assert result.relative_loads() == [pytest.approx(2.0), pytest.approx(2.0)]


def test_sampled_matches_exact_with_many_samples():
    rng = random.Random(11)
    pops = [rng.random() * 10 for _ in range(300)]
    caps = [1.0, 1.0, 1.0]
    exact = mirror_division(pops, caps)
    sampled = sampled_mirror_division(pops, caps, samples_per_server=4000, rng=random.Random(1))
    # Loads should be close even if individual assignments differ.
    for a, b in zip(exact.loads, sampled.loads):
        assert b == pytest.approx(a, rel=0.25)


def test_sampled_requires_positive_samples():
    with pytest.raises(ValueError):
        sampled_mirror_division([1, 2], [1, 1], samples_per_server=0)


def test_sampled_all_assigned():
    result = sampled_mirror_division([5, 1, 3], [1, 1], 8, rng=random.Random(2))
    assert all(s in (0, 1) for s in result.assignment)
    assert sum(result.loads) == pytest.approx(9.0)


def test_greedy_allocate_balances():
    result = greedy_allocate([5, 4, 3, 3, 2, 1], [1, 1, 1])
    assert max(result.loads) - min(result.loads) <= 2


def test_greedy_allocate_respects_capacity_weighting():
    result = greedy_allocate([6, 2], [3, 1])
    assert result.assignment[0] == 0  # biggest item to biggest server


def test_greedy_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        greedy_allocate([1], [0, 1])


def test_allocate_subtrees_uses_root_popularity():
    tree = build_random_tree(300)
    split = split_by_proportion(tree, 0.05)
    result = allocate_subtrees(split.subtree_roots, [1.0, 1.0, 1.0])
    assert set(result.by_root) == set(split.subtree_roots)
    assert sum(result.loads) == pytest.approx(
        sum(r.popularity for r in split.subtree_roots)
    )


def test_allocate_subtrees_sampled_mode():
    tree = build_random_tree(300)
    split = split_by_proportion(tree, 0.05)
    result = allocate_subtrees(
        split.subtree_roots, [1.0, 1.0], sampled=True, samples_per_server=32,
        rng=random.Random(4),
    )
    assert len(result.assignment) == len(split.subtree_roots)


def test_mirror_division_deterministic():
    pops = [3, 1, 4, 1, 5, 9]
    a = mirror_division(pops, [1, 1, 1])
    b = mirror_division(pops, [1, 1, 1])
    assert a.assignment == b.assignment


def test_dominant_subtree_window_matches_its_mass():
    # A subtree's index is its cumulative mass fraction (Fig. 4), so a
    # dominant subtree (98% of mass) lands in the window containing 0.98 —
    # the last of four equal windows.
    result = mirror_division([100, 1, 1], [1, 1, 1, 1])
    assert result.assignment[0] == 3
