"""The adversarial chaos fuzzer: shrinker unit tests + the planted bug.

The shrinker is probed with synthetic predicates first (no simulator), so
its ddmin/cluster/trigger reductions are pinned cheaply. The end-to-end
section then plants a real bug — kill9 recovery replay silently losing the
newest acknowledged WAL record — behind a monkeypatch and asserts the full
pipeline: ``run_hunt`` finds it under generated schedules, shrinks the
counterexample to a single fault event, emits an exact replay command, the
promoted corpus case reproduces it, and the whole report is byte-identical
across repeated hunts with the same seeds.
"""

import json

import pytest

from repro.chaos import CorpusCase, load_corpus, replay_case_sim, run_hunt
from repro.chaos.shrink import shrink_plan
from repro.simulation import FaultPlan
from repro.storage.base import MetadataStore


def plan(*specs):
    return FaultPlan.parse(list(specs))


NOISY = plan(
    "loss:1@ops=40:p0.5", "crash:0@ops=60", "kill9:2@ops=200",
    "recover:0@ops=240", "recover:1@ops=260", "delay:3@ops=80:d0.001",
    "drop_heartbeats:4@ops=120", "recover:4@ops=300",
)


def _kill9_probe(candidate, servers, monitors):
    """Fails iff a kill9 targeting server 2 survives in the plan."""
    return any(
        e.kind.value == "kill9" and e.server == 2 for e in candidate.events
    )


# ----------------------------------------------------------------------
# Shrinker mechanics (synthetic probes)
# ----------------------------------------------------------------------
def test_shrink_reduces_to_the_single_relevant_event():
    result = shrink_plan(NOISY, 6, 3, _kill9_probe)
    assert result is not None
    assert [e.kind.value for e in result.plan.events] == ["kill9"]
    assert result.num_servers == 3          # cluster shrunk to the floor
    assert result.num_monitors == 1
    # kill9 still targets server 2, so the cluster cannot shrink below 3.
    assert result.plan.events[0].server == 2
    assert any(step.startswith("ddmin:") for step in result.steps)


def test_shrink_tightens_ops_triggers():
    result = shrink_plan(NOISY, 6, 3, _kill9_probe)
    # The probe ignores the trigger entirely, so it tightens to zero.
    assert result.plan.events[0].at_ops == 0
    assert any(step.startswith("tighten:") for step in result.steps)


def test_shrink_returns_none_when_not_reproducing():
    assert shrink_plan(
        NOISY, 6, 3, lambda *_: False, initial_failure_known=False
    ) is None


def test_shrink_respects_the_probe_budget():
    calls = []

    def probe(candidate, servers, monitors):
        calls.append(1)
        return _kill9_probe(candidate, servers, monitors)

    result = shrink_plan(NOISY, 6, 3, probe, max_probes=5)
    assert result is not None
    assert result.truncated
    assert len(calls) <= 5
    # Even truncated, the result must still be a failing configuration.
    assert _kill9_probe(result.plan, result.num_servers, result.num_monitors)


def test_shrink_is_deterministic():
    a = shrink_plan(NOISY, 6, 3, _kill9_probe)
    b = shrink_plan(NOISY, 6, 3, _kill9_probe)
    assert a.to_dict() == b.to_dict()


def test_shrink_propagates_unexpected_probe_errors():
    def crashy(candidate, servers, monitors):
        if len(candidate.events) < 4:
            raise RuntimeError("probe blew up")
        return True

    with pytest.raises(RuntimeError):
        shrink_plan(NOISY, 6, 3, crashy)


# ----------------------------------------------------------------------
# End to end: the planted recovery bug
# ----------------------------------------------------------------------
@pytest.fixture()
def lossy_recovery(monkeypatch):
    """Plant the bug: kill9 recovery replay loses the newest acked record.

    The classic fsync-tail bug, scoped to real kill9 recoveries: whenever
    ``recover_server`` runs for a server whose volatile state is gone
    (``lost_volatile``), the replayed state silently drops its most recent
    acknowledged op. The independent durability ledger then flags the loss
    — but only on schedules that actually kill9 a server with acked ops.
    """
    import repro.simulation.runner as runner_mod

    current = {}
    real_init = runner_mod.ClusterSimulator.__init__

    def spy_init(self, *args, **kwargs):
        real_init(self, *args, **kwargs)
        current["sim"] = self

    real_recover = MetadataStore.recover_server

    def lossy_recover(self, server):
        state = real_recover(self, server)
        sim = current.get("sim")
        if (
            sim is not None
            and server < len(sim.servers)
            and sim.servers[server].lost_volatile
            and state.acked_ops
        ):
            state.acked_ops = state.acked_ops[:-1]
        return state

    monkeypatch.setattr(runner_mod.ClusterSimulator, "__init__", spy_init)
    monkeypatch.setattr(MetadataStore, "recover_server", lossy_recover)


def _hunt(tmp_path, sub="a"):
    store_dir = tmp_path / f"store-{sub}"
    store_dir.mkdir()
    return run_hunt(
        "d2-tree", "lmbe", nodes=900, scale=5e-5,
        seeds=[3], ops=400, num_servers=6, num_monitors=3,
        store="wal", store_dir=str(store_dir), max_probes=150,
    )


def test_hunt_finds_shrinks_and_replays_planted_bug(
    lossy_recovery, tmp_path
):
    report = _hunt(tmp_path)
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert any("durability" in v for v in finding.violations)

    # Shrunk to a minimal counterexample: one kill9-family event.
    assert finding.shrink is not None
    assert len(finding.shrink.plan) <= 3
    assert not finding.shrink.truncated
    kinds = {e.kind.value for e in finding.shrink.plan.events}
    assert kinds <= {"kill9", "torn_write", "corrupt_record"}

    # The minimized corpus case reproduces the violation on its own.
    assert finding.minimized is not None
    replayed = replay_case_sim(
        finding.minimized, store_dir=str(tmp_path / "replay")
    )
    assert any("durability" in v for v in replayed.violations)

    # And carries the exact CLI replay command.
    assert finding.replay.startswith("repro chaos ")
    assert "--history" in finding.replay
    assert "--fault" in finding.replay
    for spec in finding.minimized.faults:
        assert spec in finding.replay


def test_hunt_is_byte_identical_across_runs(lossy_recovery, tmp_path):
    first = _hunt(tmp_path, "a").to_dict()
    second = _hunt(tmp_path, "b").to_dict()
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_promote_writes_a_loadable_corpus_case(lossy_recovery, tmp_path):
    from repro.chaos import promote_findings

    report = _hunt(tmp_path)
    corpus_dir = tmp_path / "corpus"
    paths = promote_findings(report, str(corpus_dir))
    assert len(paths) == 1
    cases = load_corpus(str(corpus_dir))
    assert len(cases) == 1
    assert isinstance(cases[0], CorpusCase)
    assert cases[0].to_dict() == report.findings[0].minimized.to_dict()
    assert cases[0].origin.startswith("hunt seed=3")


def test_hunt_reports_clean_seed_without_plant(tmp_path):
    report = run_hunt(
        "d2-tree", "lmbe", nodes=900, scale=5e-5,
        seeds=[3], ops=400, num_servers=6, num_monitors=3,
    )
    assert report.ok
    case = report.cases[0]
    assert case.shrink is None and case.minimized is None
    assert case.history["ok"] == case.operations
    assert case.replay.startswith("repro chaos ")
    assert report.coverage  # generated schedule exercised some fault kinds


def test_hunt_records_sut_crash_as_finding(monkeypatch, tmp_path):
    import repro.chaos.hunt as hunt_mod

    def exploding_run_case(*args, **kwargs):
        raise RuntimeError("simulator went down")

    monkeypatch.setattr(hunt_mod, "run_case", exploding_run_case)
    report = run_hunt(
        "d2-tree", "lmbe", nodes=900, scale=5e-5,
        seeds=[0], ops=400, shrink=False,
    )
    assert len(report.findings) == 1
    assert report.findings[0].violations == [
        "crash: RuntimeError: simulator went down"
    ]
