"""Byte-identity regression against committed perfect-network goldens.

The partition-tolerance machinery (SimNetwork, MonitorGroup, epoch fencing)
must cost *nothing* on a fault-free run: no RNG draws, no latency, no
serialization changes. These goldens were captured with `repro simulate
--json` and the simulator must keep reproducing them byte for byte.
"""

import json
import pathlib

import pytest

from repro.cli import main

GOLDEN = pathlib.Path(__file__).parent / "golden"

CASES = [
    (
        "perfect_network_all.json",
        [
            "simulate", "--trace", "dtr", "--nodes", "1200",
            "--scale", "5e-5", "--seed", "11", "--servers", "6", "--json",
        ],
    ),
    (
        "perfect_network_d2_legacy.json",
        [
            "simulate", "--trace", "lmbe", "--nodes", "800",
            "--scale", "4e-5", "--seed", "3", "--servers", "5",
            "--scheme", "d2-tree", "--routing-engine", "legacy", "--json",
        ],
    ),
    # The durability subsystem must also cost nothing when disabled: an
    # explicit `--store memory` serializes byte-identically to a run that
    # never mentions a store (no "durability" key, no counter drift).
    (
        "perfect_network_all.json",
        [
            "simulate", "--trace", "dtr", "--nodes", "1200",
            "--scale", "5e-5", "--seed", "11", "--servers", "6",
            "--store", "memory", "--json",
        ],
    ),
]


@pytest.mark.parametrize("golden,argv", CASES, ids=[c[0] for c in CASES])
def test_fault_free_output_matches_golden(capsys, golden, argv):
    assert main(argv) == 0
    out = capsys.readouterr().out
    expected = (GOLDEN / golden).read_text()
    assert json.loads(out) == json.loads(expected)  # readable diff first
    assert out == expected  # then the full byte-identity contract
