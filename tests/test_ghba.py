"""Tests for the G-HBA Bloom-filter lookup directory."""

import random

import pytest

from repro.baselines import HashScheme
from repro.baselines.ghba import BloomFilter, GHBADirectory
from tests.conftest import build_random_tree


# ----------------------------------------------------------------------
# BloomFilter
# ----------------------------------------------------------------------
def test_bloom_no_false_negatives():
    bloom = BloomFilter.for_capacity(200, bits_per_entry=10)
    items = [f"/dir/file{i}.txt" for i in range(200)]
    for item in items:
        bloom.add(item)
    assert all(item in bloom for item in items)


def test_bloom_false_positive_rate_near_theory():
    bloom = BloomFilter.for_capacity(500, bits_per_entry=10)
    for i in range(500):
        bloom.add(f"/stored/{i}")
    probes = 5000
    hits = sum(1 for i in range(probes) if f"/absent/{i}" in bloom)
    measured = hits / probes
    theory = bloom.theoretical_fp_rate()
    assert measured < 4 * max(theory, 1e-3)


def test_bloom_fp_rate_drops_with_memory():
    def rate(bits_per_entry):
        bloom = BloomFilter.for_capacity(300, bits_per_entry)
        for i in range(300):
            bloom.add(f"/x/{i}")
        return sum(1 for i in range(3000) if f"/y/{i}" in bloom) / 3000

    assert rate(16) <= rate(4)


def test_bloom_empty_filter_rejects_everything():
    bloom = BloomFilter(256, 4)
    assert "/anything" not in bloom
    assert bloom.theoretical_fp_rate() == 0.0


def test_bloom_validation():
    with pytest.raises(ValueError):
        BloomFilter(4, 2)
    with pytest.raises(ValueError):
        BloomFilter(64, 0)


# ----------------------------------------------------------------------
# GHBADirectory
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def directory():
    tree = build_random_tree(400, seed=41)
    placement = HashScheme().partition(tree, 8)
    return tree, placement, GHBADirectory(placement, tree, group_size=4)


def test_lookup_finds_every_stored_path(directory):
    tree, placement, ghba = directory
    rng = random.Random(1)
    sample = rng.sample(list(tree.nodes), 60)
    for node in sample:
        result = ghba.lookup(node.path, from_server=rng.randrange(8))
        assert result.found
        assert result.server == placement.primary_of(node)


def test_lookup_missing_path_exhausts_stages(directory):
    _tree, placement, ghba = directory
    result = ghba.lookup("/definitely/not/stored.bin", from_server=0)
    assert not result.found
    assert result.stage == "broadcast"
    assert result.messages >= placement.num_servers


def test_local_group_lookups_are_cheap(directory):
    tree, placement, ghba = directory
    # Pick a node stored inside server 0's group (servers 0-3).
    node = next(n for n in tree if placement.primary_of(n) in (0, 1, 2, 3))
    result = ghba.lookup(node.path, from_server=0)
    assert result.stage == "local-group"
    assert result.messages <= ghba.group_size


def test_remote_lookup_costs_scale_with_groups(directory):
    tree, placement, ghba = directory
    node = next(n for n in tree if placement.primary_of(n) >= 4)
    result = ghba.lookup(node.path, from_server=0)
    assert result.stage in ("remote-group", "broadcast")
    assert result.messages >= 1


def test_group_partitioning(directory):
    _tree, _placement, ghba = directory
    assert ghba.num_groups == 2
    assert ghba.group_members(0) == [0, 1, 2, 3]
    assert ghba.group_members(1) == [4, 5, 6, 7]
    assert ghba.group_of(5) == 1


def test_ragged_last_group():
    tree = build_random_tree(150, seed=5)
    placement = HashScheme().partition(tree, 6)
    ghba = GHBADirectory(placement, tree, group_size=4)
    assert ghba.num_groups == 2
    assert ghba.group_members(1) == [4, 5]


def test_memory_accounting(directory):
    _tree, _placement, ghba = directory
    # Replication: each group member holds the whole group's filters.
    raw = sum(f.num_bits for f in ghba.filters)
    assert ghba.memory_bits() == raw * ghba.group_size


def test_group_size_validation(directory):
    tree, placement, _ghba = directory
    with pytest.raises(ValueError):
        GHBADirectory(placement, tree, group_size=0)


def test_more_memory_fewer_false_positives():
    tree = build_random_tree(500, seed=9)
    placement = HashScheme().partition(tree, 8)
    rng = random.Random(3)
    sample = rng.sample(list(tree.nodes), 80)

    def total_fps(bits_per_entry):
        ghba = GHBADirectory(placement, tree, group_size=4,
                             bits_per_entry=bits_per_entry)
        return sum(
            ghba.lookup(n.path, from_server=rng.randrange(8)).false_positives
            for n in sample
        )

    assert total_fps(16) <= total_fps(2)
