"""Transport parity: SimNetwork and AsyncioTransport agree on outcomes.

The unified Transport API's core promise: the same seeded workload driven
through the discrete-event simulator and through a real asyncio cluster
reaches the same logical end state — every op acked exactly once, the
same final namespace ownership, and the same safety-invariant verdicts
when faults are injected. Wall-clock numbers differ (that is what
``repro validate`` measures); *correctness* must not.
"""

import asyncio
import dataclasses

import pytest

from repro import registry
from repro.chaos import run_case
from repro.simulation import FaultPlan, SimulationConfig, simulate
from repro.traces import DatasetProfile, load_workload
from repro.transport.live import (
    LiveCluster,
    LiveConfig,
    check_invariants,
    owner_map,
)
from repro.transport.loadgen import LoadConfig, LoadGenerator, trace_ops

NUM_SERVERS = 3
NUM_MONITORS = 3
SEED = 7


@pytest.fixture(scope="module")
def workload():
    profile = dataclasses.replace(
        DatasetProfile.dtr(num_nodes=300, scale=1e-4), seed=SEED
    )
    bundle = load_workload(profile)
    return dataclasses.replace(bundle, trace=bundle.trace.slice(0, 500))


def _live_run(workload, plan=None):
    """Boot a live cluster, drive the trace, quiesce, snapshot state."""

    async def go():
        cluster = LiveCluster(
            registry.create("d2-tree"),
            workload,
            LiveConfig(
                num_servers=NUM_SERVERS,
                num_monitors=NUM_MONITORS,
                seed=SEED,
            ),
        )
        await cluster.start()
        try:
            generator = LoadGenerator(
                cluster.transport,
                NUM_SERVERS,
                trace_ops(workload.trace),
                LoadConfig(rate=4000.0, seed=SEED),
            )
            fault_task = None
            if plan:
                fault_task = asyncio.create_task(
                    cluster.run_fault_plan(plan, lambda: generator.completed)
                )
            load = await generator.run()
            if fault_task is not None:
                fault_task.cancel()
                await cluster.quiesce()
            return {
                "load": load,
                "violations": check_invariants(cluster, load),
                "ownership": owner_map(cluster.placement, workload.tree),
                "mds_maps": [dict(s.owners) for s in cluster.servers],
                "epoch": cluster.group.epoch,
            }
        finally:
            await cluster.stop()

    return asyncio.run(go())


def test_fault_free_parity(workload):
    live = _live_run(workload)
    sim = simulate(
        registry.create("d2-tree"),
        workload,
        NUM_SERVERS,
        SimulationConfig(
            adjust_every_ops=0,
            num_monitors=NUM_MONITORS,
            seed=SEED,
        ),
    )

    # Same acked-op set: both transports acknowledge every op exactly once.
    total = len(workload.trace)
    assert live["load"].acked_ids == set(range(total))
    assert live["load"].failed == 0
    assert sim.operations == total
    assert sim.failed_operations == 0

    # Same final namespace ownership: without faults or dynamic
    # adjustment, neither transport moves anything — both end exactly at
    # the scheme's deterministic initial partition.
    expected = owner_map(
        registry.create("d2-tree").partition(workload.tree, NUM_SERVERS),
        workload.tree,
    )
    assert live["ownership"] == expected
    assert live["violations"] == []


def test_every_live_mds_converges_to_the_authoritative_map(workload):
    live = _live_run(workload)
    # The broadcast protocol must leave every (live) MDS holding the full
    # authoritative routing map — a stale map would strand redirects.
    for mds_map in live["mds_maps"]:
        assert mds_map == live["ownership"]


def test_partition_fault_produces_same_invariant_verdicts(workload):
    plan = FaultPlan.parse([
        "partition:{0}|{1,2,m0,m1,m2}@ops=100",
        "heal:*@ops=300",
    ])

    live = _live_run(workload, plan=plan)
    assert live["violations"] == []
    # Post-heal the cluster must re-converge on one authoritative map.
    assert live["load"].acked == len(workload.trace)

    case = run_case(
        "d2-tree",
        workload,
        NUM_SERVERS,
        SEED,
        num_monitors=NUM_MONITORS,
        plan=plan,
    )
    # Same verdict from the simulated transport under the same plan.
    assert case.violations == []
    assert case.ok
